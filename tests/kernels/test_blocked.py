"""The blocked GEMM kernel: m-invariance (bitwise) and accuracy (fuzzed).

The kernel's whole reason to exist is the first property: the reduction
order of every output element is a function of k alone, so any row
slicing/stacking of the left operand reproduces the exact bits of the
unsliced call.  Hypothesis drives both properties across shapes that
straddle the MC row-tile and KC chunk boundaries — the two places a
blocking bug would re-associate the sum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KC, MC, blocked_matmul, blocked_matmul_t


def _mat(shape, seed):
    rng = np.random.default_rng(seed)
    return (rng.random(shape, dtype=np.float32) - 0.5).astype(np.float32)


# Shapes are drawn to straddle the tile boundaries: m around MC, k around
# KC (the semantic chunk size), n small — the conv-GEMM aspect ratio.
dims = st.tuples(
    st.integers(1, 2 * MC + 3),    # m
    st.integers(1, KC + 40),       # k
    st.integers(1, 24),            # n
)


class TestMInvariance:
    @settings(max_examples=40, deadline=None)
    @given(dims=dims, splits=st.integers(1, 5), seed=st.integers(0, 2**16))
    def test_any_row_stacking_is_bit_identical(self, dims, splits, seed):
        """Stacked call == concatenated per-slice calls, bitwise."""
        m, k, n = dims
        a, b = _mat((m, k), seed), _mat((k, n), seed + 1)
        whole = blocked_matmul(a, b)
        bounds = np.linspace(0, m, splits + 1, dtype=int)
        parts = [
            blocked_matmul(a[lo:hi], b)
            for lo, hi in zip(bounds, bounds[1:])
        ]
        assert np.array_equal(whole, np.concatenate(parts))

    def test_single_rows_match_the_stack(self):
        """The serving claim verbatim: N samples stacked == N runs of 1."""
        a, b = _mat((MC + 7, KC + 9), 0), _mat((KC + 9, 16), 1)
        whole = blocked_matmul(a, b)
        for i in range(a.shape[0]):
            assert np.array_equal(
                whole[i:i + 1], blocked_matmul(a[i:i + 1], b)
            )

    def test_blas_shows_why_this_kernel_exists(self):
        """On shapes where np.matmul re-associates across m, the blocked
        kernel must not.  (If BLAS happens to be m-invariant here the
        check is vacuous but still true — no xfail needed.)"""
        a, b = _mat((300, 700), 2), _mat((700, 8), 3)
        stacked = blocked_matmul(a, b)
        singles = np.concatenate(
            [blocked_matmul(a[i:i + 1], b) for i in range(300)]
        )
        assert np.array_equal(stacked, singles)


class TestAccuracy:
    @settings(max_examples=40, deadline=None)
    @given(dims=dims, seed=st.integers(0, 2**16))
    def test_close_to_npdot_in_fp32(self, dims, seed):
        m, k, n = dims
        a, b = _mat((m, k), seed), _mat((k, n), seed + 1)
        got = blocked_matmul(a, b)
        want = np.dot(a.astype(np.float64), b.astype(np.float64))
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_t_variant_matches_wrapper(self):
        a, b = _mat((50, 80), 4), _mat((80, 12), 5)
        bt = np.ascontiguousarray(b.T)
        assert np.array_equal(blocked_matmul(a, b), blocked_matmul_t(a, bt))

    def test_out_parameter_writes_in_place(self):
        a, b = _mat((MC + 1, KC + 1), 6), _mat((KC + 1, 5), 7)
        out = np.empty((MC + 1, 5), dtype=np.float32)
        ret = blocked_matmul(a, b, out=out)
        assert ret is out
        assert np.array_equal(out, blocked_matmul(a, b))


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            blocked_matmul(np.zeros((2, 2, 2), np.float32),
                           np.zeros((2, 2), np.float32))
        with pytest.raises(ValueError, match="2-D"):
            blocked_matmul(np.zeros((2, 2), np.float32),
                           np.zeros(2, np.float32))

    def test_rejects_non_float32(self):
        with pytest.raises(TypeError, match="float32"):
            blocked_matmul(np.zeros((2, 3)), np.zeros((3, 4), np.float32))
        with pytest.raises(TypeError, match="float32"):
            blocked_matmul(np.zeros((2, 3), np.float32), np.zeros((3, 4)))

    def test_rejects_inner_dim_mismatch(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            blocked_matmul(np.zeros((2, 3), np.float32),
                           np.zeros((4, 5), np.float32))

    def test_rejects_bad_out(self):
        a = np.zeros((2, 3), np.float32)
        b = np.zeros((3, 4), np.float32)
        with pytest.raises(ValueError, match="out has shape"):
            blocked_matmul(a, b, out=np.empty((3, 4), np.float32))
        with pytest.raises(TypeError, match="out must be float32"):
            blocked_matmul(a, b, out=np.empty((2, 4), np.float64))
