"""Deployment-path tests: quantization and functional tiled inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SESR
from repro.deploy import (
    QuantParams,
    calibrate_tensor,
    calibrate_weight_per_channel,
    halo_overhead,
    paper_tile_grid,
    quantize_sesr,
    receptive_radius,
    tiled_upscale,
)
from repro.datasets import SyntheticDataset
from repro.metrics import psnr, sesr_specs
from repro.train import predict_image


_TRAINED_CACHE = {}


def trained_collapsed(seed=0):
    """A small trained-ish collapsed net (a few steps so weights are live).

    Cached per seed — training once is enough; tests must not mutate it.
    """
    if seed not in _TRAINED_CACHE:
        from repro.datasets import PatchSampler
        from repro.train import Trainer

        model = SESR(scale=2, f=8, m=2, expansion=16, seed=seed)
        ds = SyntheticDataset("div2k", n_images=3, size=(48, 48), scale=2,
                              seed=1)
        sam = PatchSampler(ds, scale=2, patch_size=12, crops_per_image=4,
                           batch_size=4, seed=2)
        Trainer(model, lr=2e-3).fit(sam, epochs=3)
        _TRAINED_CACHE[seed] = model.collapse()
    return _TRAINED_CACHE[seed]


class TestQuantParams:
    def test_fake_quant_idempotent(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        params = calibrate_tensor(x)
        once = params.fake_quant(x)
        twice = params.fake_quant(once)
        np.testing.assert_allclose(once, twice)

    def test_quantization_error_bounded(self, rng):
        x = rng.uniform(-3, 3, 1000)
        params = calibrate_tensor(x, bits=8)
        err = np.abs(params.fake_quant(x) - x).max()
        assert err <= params.scale / 2 + 1e-9

    def test_symmetric_zero_point(self, rng):
        params = calibrate_tensor(rng.standard_normal(50), symmetric=True)
        assert params.zero_point == 0
        assert params.symmetric

    def test_range_limits(self):
        params = QuantParams(scale=np.float64(1.0),
                             zero_point=np.float64(0.0), bits=8)
        assert params.qmin == -128 and params.qmax == 127
        q = params.quantize(np.array([1e6, -1e6]))
        np.testing.assert_allclose(q, [127, -128])

    def test_zero_always_representable(self, rng):
        x = rng.uniform(5.0, 9.0, 100)  # strictly positive data
        params = calibrate_tensor(x, bits=8)
        assert np.abs(params.fake_quant(np.zeros(1))).max() < params.scale

    @given(st.integers(2, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_more_bits_less_error(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, 256)
        lo = calibrate_tensor(x, bits=bits)
        hi = calibrate_tensor(x, bits=bits + 2)
        err_lo = np.abs(lo.fake_quant(x) - x).mean()
        err_hi = np.abs(hi.fake_quant(x) - x).mean()
        assert err_hi <= err_lo + 1e-12


class TestWeightCalibration:
    def test_per_channel_scales(self, rng):
        w = rng.standard_normal((3, 3, 4, 8)).astype(np.float32)
        w[..., 0] *= 10  # one channel with much larger range
        params = calibrate_weight_per_channel(w)
        assert params.scale.shape == (8,)
        assert params.scale[0] > 5 * params.scale[1]

    def test_exact_for_tiny_grids(self):
        w = np.array([[[[0.5, -1.0]]]], dtype=np.float32)
        params = calibrate_weight_per_channel(w)
        np.testing.assert_allclose(params.fake_quant(w), w, atol=1e-2)


class TestQuantizedSESR:
    def test_int8_close_to_float(self, rng):
        col = trained_collapsed()
        ds = SyntheticDataset("set5", n_images=3, size=(64, 64), scale=2, seed=7)
        calib = [ds[i][0] for i in range(2)]
        q = quantize_sesr(col, calib_images=calib)
        lr_img, hr_img = ds[2]
        p_float = psnr(predict_image(col, lr_img), hr_img, border=2)
        p_int8 = psnr(predict_image(q, lr_img), hr_img, border=2)
        assert p_int8 > p_float - 1.5  # int8 costs little quality

    def test_weight_only_mode(self):
        col = trained_collapsed()
        q = quantize_sesr(col, calib_images=None)
        assert q.first.act_params is None

    def test_model_size_4x_smaller(self):
        col = trained_collapsed()
        q = quantize_sesr(col)
        assert q.float_weight_bytes() == 4 * q.weight_bytes()

    def test_lower_bits_larger_deviation_from_float(self):
        """Quantization error vs the float model grows as bits shrink."""
        col = trained_collapsed()
        ds = SyntheticDataset("set5", n_images=2, size=(64, 64), scale=2, seed=7)
        calib = [ds[0][0]]
        lr_img, _ = ds[1]
        reference = predict_image(col, lr_img)
        err = {}
        for bits in (8, 4, 2):
            q = quantize_sesr(col, calib, weight_bits=bits, act_bits=bits)
            err[bits] = float(np.abs(predict_image(q, lr_img) - reference).mean())
        assert err[8] < err[4] < err[2]

    def test_observer_requires_data(self):
        from repro.deploy import ActivationObserver

        with pytest.raises(RuntimeError):
            ActivationObserver().params()


class TestTiledInference:
    def test_receptive_radius_formula(self):
        # SESR: 5×5 + m·3×3 + 5×5 -> 2 + m + 2.
        for m in (2, 5, 11):
            specs = sesr_specs(8, m, 2)
            assert receptive_radius(specs) == m + 4

    def test_exact_with_default_halo(self):
        col = trained_collapsed()
        ds = SyntheticDataset("set14", n_images=1, size=(72, 56), scale=2, seed=4)
        lr_img, _ = ds[0]
        full = predict_image(col, lr_img)
        for tile in [(16, 16), (20, 12), (36, 28)]:
            tiled = tiled_upscale(col, lr_img, 2, tile=tile)
            np.testing.assert_allclose(tiled, full, atol=1e-6)

    def test_insufficient_halo_diverges(self):
        col = trained_collapsed()
        ds = SyntheticDataset("set14", n_images=1, size=(48, 48), scale=2, seed=4)
        lr_img, _ = ds[0]
        full = predict_image(col, lr_img)
        tiled = tiled_upscale(col, lr_img, 2, tile=(12, 12), halo=0)
        assert np.abs(tiled - full).max() > 1e-4

    def test_non_divisible_frame(self):
        col = trained_collapsed()
        lr_img = np.random.default_rng(0).random((35, 29)).astype(np.float32)
        full = predict_image(col, lr_img)
        tiled = tiled_upscale(col, lr_img, 2, tile=(16, 16))
        np.testing.assert_allclose(tiled, full, atol=1e-6)

    def test_bad_tile_raises(self):
        col = trained_collapsed()
        with pytest.raises(ValueError):
            tiled_upscale(col, np.zeros((8, 8), np.float32), 2, tile=(0, 4))

    def test_halo_overhead_properties(self):
        # Zero halo means zero overhead.
        assert halo_overhead(1080, 1920, (300, 400), 0) == pytest.approx(0.0)
        # Larger halo means more overhead; values are modest.
        small = halo_overhead(1080, 1920, (300, 400), 4)
        large = halo_overhead(1080, 1920, (300, 400), 16)
        assert 0 < small < large < 0.5

    def test_paper_tile_grid(self):
        assert paper_tile_grid() == pytest.approx(17.28)


class TestSelfEnsemble:
    def test_improves_or_matches_trained_model(self):
        from repro.deploy import self_ensemble

        col = trained_collapsed()
        ds = SyntheticDataset("set14", n_images=3, size=(48, 48), scale=2,
                              seed=9)
        plain, ensembled = [], []
        for lr_img, hr_img in ds:
            plain.append(psnr(predict_image(col, lr_img), hr_img, border=2))
            ensembled.append(psnr(self_ensemble(col, lr_img, 2), hr_img,
                                  border=2))
        assert np.mean(ensembled) >= np.mean(plain) - 0.05

    def test_single_transform_equals_plain(self):
        from repro.deploy import self_ensemble

        col = trained_collapsed()
        img = np.random.default_rng(3).random((20, 16)).astype(np.float32)
        one = self_ensemble(col, img, 2, transforms=1)
        np.testing.assert_allclose(one, predict_image(col, img), atol=1e-6)

    def test_output_geometry_non_square(self):
        from repro.deploy import self_ensemble

        col = trained_collapsed()
        img = np.random.default_rng(4).random((18, 26)).astype(np.float32)
        out = self_ensemble(col, img, 2)
        assert out.shape == (36, 52)

    def test_deterministic_and_dihedral_covariant(self):
        """The ensemble itself is deterministic, and transforming the input
        by a dihedral element transforms the full-8 ensemble output the
        same way (the ensemble operator *is* equivariant even though the
        underlying model is not — averaging over the whole group commutes
        with every group element)."""
        from repro.deploy import self_ensemble

        col = trained_collapsed()
        img = np.random.default_rng(5).random((14, 14)).astype(np.float32)
        a = self_ensemble(col, img, 2)
        b = self_ensemble(col, img, 2)
        np.testing.assert_array_equal(a, b)
        rotated = self_ensemble(col, np.ascontiguousarray(np.rot90(img)), 2)
        np.testing.assert_allclose(rotated, np.rot90(a), atol=1e-5)

    def test_transform_count_validation(self):
        from repro.deploy import self_ensemble

        col = trained_collapsed()
        with pytest.raises(ValueError):
            self_ensemble(col, np.zeros((8, 8), np.float32), 2, transforms=0)
        with pytest.raises(ValueError):
            self_ensemble(col, np.zeros((8, 8), np.float32), 2, transforms=9)
