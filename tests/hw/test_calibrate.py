"""Calibration regression tests: the frozen spec must keep matching Table 3."""

import pytest

from repro.hw import ETHOS_N78_4TOPS, anchor_rows, fit_spec, residuals


class TestFrozenSpec:
    def test_all_anchor_residuals_bounded(self):
        """Frozen constants keep every Table 3 observable within ±105%."""
        for name, (r_ms, r_mb) in residuals(ETHOS_N78_4TOPS).items():
            assert abs(r_ms) < 0.55, f"{name}: runtime residual {r_ms:+.2f}"
            assert abs(r_mb) < 1.05, f"{name}: dram residual {r_mb:+.2f}"

    def test_full_frame_anchors_tight(self):
        """The two primary (non-tiled ×2) anchors are within ±35%."""
        res = residuals(ETHOS_N78_4TOPS)
        for key in ("FSRCNN (x2) 1080p->4K", "SESR-M5 (x2) 1080p->4K"):
            r_ms, r_mb = res[key]
            assert abs(r_ms) < 0.35
            assert abs(r_mb) < 0.45

    def test_anchor_macs_sanity(self):
        """Published MAC counts are architecture arithmetic — match exactly."""
        for anchor, _ in anchor_rows():
            assert anchor.macs_g > 0


class TestRefit:
    def test_refit_reproduces_frozen_constants(self):
        """Re-running the least-squares fit lands on the frozen values."""
        fitted = fit_spec()
        assert fitted.dram_bandwidth == pytest.approx(
            ETHOS_N78_4TOPS.dram_bandwidth, rel=0.05
        )
        assert fitted.compression_ratio == pytest.approx(
            ETHOS_N78_4TOPS.compression_ratio, rel=0.05
        )

    def test_fit_is_deterministic(self):
        a, b = fit_spec(), fit_spec()
        assert a.dram_bandwidth == b.dram_bandwidth
        assert a.compression_ratio == b.compression_ratio
