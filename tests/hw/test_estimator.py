"""NPU performance-estimator tests: Fig. 1(b) theoretical numbers, roofline
behaviour, lane utilisation, spill logic, and the Table 3 shape claims."""

import pytest

from repro.hw import (
    ETHOS_N78_4TOPS,
    IDEAL_4TOPS,
    NPUSpec,
    estimate,
    estimate_tiled,
    fsrcnn_graph,
    graph_from_specs,
    sesr_hw_graph,
    sesr_paper_graph,
    theoretical_fps,
)
from repro.metrics import LayerSpec


class TestLaneUtilization:
    def test_aligned_channels_full_util(self):
        spec = NPUSpec(lane_channels=16)
        assert spec.lane_utilization(16) == 1.0
        assert spec.lane_utilization(32) == 1.0

    def test_misaligned_channels(self):
        spec = NPUSpec(lane_channels=16)
        assert spec.lane_utilization(1) == pytest.approx(1 / 16)
        assert spec.lane_utilization(4) == pytest.approx(4 / 16)
        assert spec.lane_utilization(56) == pytest.approx(56 / 64)

    def test_zero_channels_is_noop(self):
        assert NPUSpec().lane_utilization(0) == 1.0


class TestTheoreticalFPS:
    def test_fsrcnn_fig1b_anchor(self):
        """Fig. 1(b): FSRCNN theoretically reaches ~37 FPS on 4 TOP/s."""
        graph = fsrcnn_graph(2, 1080, 1920)
        fps = theoretical_fps(graph, IDEAL_4TOPS)
        assert fps == pytest.approx(37.0, rel=0.02)

    def test_sesr_m5_faster_than_fsrcnn(self):
        f = theoretical_fps(fsrcnn_graph(2, 1080, 1920), IDEAL_4TOPS)
        s = theoretical_fps(sesr_hw_graph(16, 5, 2, 1080, 1920), IDEAL_4TOPS)
        assert s > 1.8 * f

    def test_three_of_five_sesr_near_60fps(self):
        """Fig. 1(b): 'three out of five SESR CNNs achieve nearly 60 FPS'."""
        configs = [(16, 3), (16, 5), (16, 7), (16, 11), (32, 11)]
        fps = [
            theoretical_fps(sesr_hw_graph(f, m, 2, 1080, 1920), IDEAL_4TOPS)
            for f, m in configs
        ]
        assert sum(v >= 50.0 for v in fps) == 3
        assert fps == sorted(fps, reverse=True)  # smaller model -> faster


class TestRooflineBehaviour:
    def test_more_macs_more_time(self):
        small = estimate(sesr_hw_graph(16, 3, 2, 540, 960), ETHOS_N78_4TOPS)
        large = estimate(sesr_hw_graph(16, 11, 2, 540, 960), ETHOS_N78_4TOPS)
        assert large.runtime_sec > small.runtime_sec
        assert large.total_macs > small.total_macs

    def test_infinite_bandwidth_compute_bound(self):
        npu = NPUSpec(dram_bandwidth=float("inf"))
        report = estimate(sesr_hw_graph(16, 5, 2, 1080, 1920), npu)
        assert all(layer.bound == "compute" for layer in report.layers if layer.macs > 0)

    def test_tiny_bandwidth_memory_bound(self):
        npu = NPUSpec(dram_bandwidth=1e6)
        report = estimate(sesr_hw_graph(16, 5, 2, 1080, 1920), npu)
        conv_layers = [layer for layer in report.layers if layer.kind == "conv"]
        assert all(layer.bound == "memory" for layer in conv_layers)

    def test_small_maps_stay_in_sram(self):
        """At tiny resolution nothing spills; only graph I/O hits DRAM."""
        npu = NPUSpec(sram_bytes=10e6)
        report = estimate(sesr_hw_graph(16, 5, 2, 32, 32), npu)
        interior = [layer for layer in report.layers[1:-1] if layer.kind == "conv"]
        weight_only = [layer.dram_bytes for layer in interior]
        # Interior conv traffic is just weights (tiny).
        assert max(weight_only) < 50e3

    def test_report_properties(self):
        report = estimate(sesr_hw_graph(16, 5, 2, 270, 480), ETHOS_N78_4TOPS)
        assert report.dram_mb == pytest.approx(report.dram_bytes / 1e6)
        assert report.fps == pytest.approx(1.0 / report.runtime_sec)
        assert report.runtime_ms == pytest.approx(report.runtime_sec * 1e3)

    def test_utilization_in_unit_interval(self):
        report = estimate(fsrcnn_graph(2, 270, 480), ETHOS_N78_4TOPS)
        assert all(0 < layer.utilization <= 1 for layer in report.layers)


class TestTable3Shape:
    """The hardware-evaluation claims (§5.6) as tolerance-band assertions."""

    def test_macs_columns_exact(self):
        assert fsrcnn_graph(2, 1080, 1920).total_macs() == pytest.approx(54e9, rel=0.01)
        assert sesr_hw_graph(16, 5, 2, 1080, 1920).total_macs() == pytest.approx(28e9, rel=0.01)
        assert sesr_hw_graph(16, 5, 4, 1080, 1920).total_macs() == pytest.approx(38e9, rel=0.01)

    def test_sesr_substantially_faster_than_fsrcnn(self):
        """Paper: 6.15× runtime improvement; our calibrated model: ≥ 3.5×."""
        f = estimate(fsrcnn_graph(2, 1080, 1920), ETHOS_N78_4TOPS)
        s = estimate(sesr_hw_graph(16, 5, 2, 1080, 1920), ETHOS_N78_4TOPS)
        ratio = f.runtime_sec / s.runtime_sec
        assert 3.5 <= ratio <= 9.0

    def test_dram_roughly_2x_smaller(self):
        """Paper: FSRCNN uses ~2× the DRAM of SESR-M5."""
        f = estimate(fsrcnn_graph(2, 1080, 1920), ETHOS_N78_4TOPS)
        s = estimate(sesr_hw_graph(16, 5, 2, 1080, 1920), ETHOS_N78_4TOPS)
        assert 1.4 <= f.dram_bytes / s.dram_bytes <= 2.6

    def test_x4_slower_than_x2(self):
        """1080p→8K costs more than 1080p→4K (paper: 45.09 vs 27.22 ms)."""
        x2 = estimate(sesr_hw_graph(16, 5, 2, 1080, 1920), ETHOS_N78_4TOPS)
        x4 = estimate(sesr_hw_graph(16, 5, 4, 1080, 1920), ETHOS_N78_4TOPS)
        assert x4.runtime_sec > x2.runtime_sec
        assert x4.dram_bytes > x2.dram_bytes

    def test_absolute_runtimes_within_band(self):
        """Calibrated model lands within ±50% of every Table 3 runtime."""
        from repro.hw import anchor_rows

        for anchor, evaluator in anchor_rows():
            ms, _ = evaluator(ETHOS_N78_4TOPS)
            assert 0.5 * anchor.runtime_ms <= ms <= 1.5 * anchor.runtime_ms, anchor.name


class TestTiling:
    def test_paper_tile_count(self):
        graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
        report = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)
        assert report.n_tiles == pytest.approx(17.28)

    def test_tiling_improves_per_frame_time(self):
        graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
        full = estimate(graph, ETHOS_N78_4TOPS)
        tiled = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)
        assert tiled.total_runtime_sec < full.runtime_sec

    def test_tiled_fsrcnn_vs_sesr_8x_band(self):
        """Paper: tiling brings the FSRCNN→SESR gap to ~8× (6 vs 46 FPS)."""
        fsr = estimate(fsrcnn_graph(2, 1080, 1920), ETHOS_N78_4TOPS)
        sesr_tiled = estimate_tiled(
            sesr_hw_graph(16, 5, 2, 1080, 1920), ETHOS_N78_4TOPS, 300, 400
        )
        ratio = fsr.runtime_sec / sesr_tiled.total_runtime_sec
        assert 4.0 <= ratio <= 12.0

    def test_halo_factor_increases_cost(self):
        graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
        plain = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)
        halo = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400, halo_factor=1.1)
        assert halo.total_runtime_sec == pytest.approx(
            plain.total_runtime_sec * 1.1
        )

    def test_tile_larger_than_frame_raises(self):
        graph = sesr_hw_graph(16, 5, 2, 270, 480)
        with pytest.raises(ValueError):
            estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)


class TestGraphs:
    def test_paper_graph_includes_black_residual(self):
        hw = sesr_hw_graph(16, 5, 2, 100, 100)
        paper = sesr_paper_graph(16, 5, 2, 100, 100)
        assert len([s for s in paper.specs if s.kind == "add"]) == 2
        assert len([s for s in hw.specs if s.kind == "add"]) == 1

    def test_with_resolution(self):
        g = sesr_hw_graph(16, 5, 2, 1080, 1920).with_resolution(300, 400)
        assert (g.in_h, g.in_w) == (300, 400)
        assert g.specs is not None

    def test_graph_from_specs(self):
        specs = [LayerSpec("conv", (3, 3), 4, 4, 1.0)]
        g = graph_from_specs("custom", specs, 10, 10)
        assert g.total_macs() == 9 * 16 * 100
