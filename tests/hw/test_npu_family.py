"""Ethos-N78 product-line scaling tests."""

import pytest

from repro.hw import (
    ETHOS_N78_4TOPS,
    ETHOS_N78_FAMILY,
    estimate,
    scaled_variant,
    sesr_hw_graph,
)


class TestScaledVariants:
    def test_4tops_is_the_calibrated_point(self):
        spec = ETHOS_N78_FAMILY[4.0]
        assert spec.peak_macs_per_sec == ETHOS_N78_4TOPS.peak_macs_per_sec
        assert spec.sram_bytes == ETHOS_N78_4TOPS.sram_bytes

    def test_compute_scales_linearly(self):
        assert ETHOS_N78_FAMILY[8.0].peak_macs_per_sec == pytest.approx(
            2 * ETHOS_N78_FAMILY[4.0].peak_macs_per_sec
        )
        assert ETHOS_N78_FAMILY[1.0].sram_bytes == pytest.approx(
            ETHOS_N78_FAMILY[4.0].sram_bytes / 4
        )

    def test_dram_bandwidth_shared(self):
        bws = {s.dram_bandwidth for s in ETHOS_N78_FAMILY.values()}
        assert bws == {ETHOS_N78_4TOPS.dram_bandwidth}

    def test_invalid_tops(self):
        with pytest.raises(ValueError):
            scaled_variant(0)

    def test_fps_monotone_with_diminishing_returns(self):
        """More TOPS → more FPS, but memory-bound saturation sets in."""
        graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
        fps = [estimate(graph, ETHOS_N78_FAMILY[t]).fps
               for t in (1.0, 2.0, 4.0, 8.0, 10.0)]
        assert all(b >= a for a, b in zip(fps, fps[1:]))
        # Perfect compute scaling would give 10×; memory limits it.
        assert fps[-1] < 10 * fps[0]

    def test_bigger_parts_unlock_bigger_models(self):
        """SESR-XL at 1080p needs the high-end parts for real-time rates."""
        graph = sesr_hw_graph(32, 11, 2, 1080, 1920)
        small = estimate(graph, ETHOS_N78_FAMILY[1.0]).fps
        large = estimate(graph, ETHOS_N78_FAMILY[8.0]).fps
        assert large > 3 * small
