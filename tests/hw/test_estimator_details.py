"""Estimator edge cases: adds, overheads, deconv lowering, layer accounting."""

import pytest

from repro.hw import NPUSpec, estimate, graph_from_specs
from repro.metrics import LayerSpec


def graph(specs, h=100, w=100):
    return graph_from_specs("t", specs, h, w)


class TestAddLayers:
    def test_spilled_add_costs_memory(self):
        npu = NPUSpec(sram_bytes=1.0)  # everything spills
        specs = [
            LayerSpec("conv", (3, 3), 4, 4, 1.0, "c"),
            LayerSpec("add", (1, 1), 4, 4, 1.0, "residual"),
        ]
        report = estimate(graph(specs), npu)
        add = report.layers[1]
        assert add.dram_bytes > 0
        assert add.macs == 0

    def test_resident_add_is_free(self):
        npu = NPUSpec(sram_bytes=1e12)
        specs = [
            LayerSpec("conv", (3, 3), 4, 4, 1.0, "c"),
            LayerSpec("add", (1, 1), 4, 4, 1.0, "residual"),
        ]
        report = estimate(graph(specs), npu)
        assert report.layers[1].dram_bytes == 0


class TestOverheadAndAccounting:
    def test_layer_overhead_adds_up(self):
        specs = [LayerSpec("conv", (3, 3), 4, 4, 1.0)] * 3
        base = estimate(graph(specs), NPUSpec(layer_overhead_sec=0.0))
        with_oh = estimate(graph(specs), NPUSpec(layer_overhead_sec=1.0))
        assert with_oh.runtime_sec >= base.runtime_sec + 2.9

    def test_totals_are_layer_sums(self):
        specs = [
            LayerSpec("conv", (5, 5), 1, 16, 1.0),
            LayerSpec("conv", (3, 3), 16, 16, 1.0),
            LayerSpec("depth_to_space", (1, 1), 16, 4, 2.0),
        ]
        report = estimate(graph(specs), NPUSpec())
        assert report.total_macs == sum(layer.macs for layer in report.layers)
        assert report.dram_bytes == pytest.approx(
            sum(layer.dram_bytes for layer in report.layers)
        )
        assert report.runtime_sec == pytest.approx(
            sum(layer.time_sec for layer in report.layers)
        )

    def test_weight_traffic_counted(self):
        npu = NPUSpec(sram_bytes=1e12)  # activations resident
        specs = [LayerSpec("conv", (3, 3), 16, 16, 1.0)]
        # Interior conv of a 2-layer graph: neither graph input nor output.
        specs = [LayerSpec("conv", (3, 3), 16, 16, 1.0)] * 3
        report = estimate(graph(specs), npu)
        mid = report.layers[1]
        assert mid.dram_bytes == pytest.approx(9 * 16 * 16)  # weights only


class TestDeconvLowering:
    def test_deconv_utilisation_uses_subpixel_channels(self):
        npu = NPUSpec(lane_channels=16)
        # 1-output-channel deconv at ×4 lowers to 16 channels: full lanes.
        specs = [LayerSpec("deconv", (9, 9), 16, 1, 4.0, "deconv")]
        report = estimate(graph(specs), npu)
        assert report.layers[0].utilization == pytest.approx(1.0)
        # At ×2 it lowers to 4 channels: quarter utilisation.
        specs = [LayerSpec("deconv", (9, 9), 16, 1, 2.0, "deconv")]
        report = estimate(graph(specs), npu)
        assert report.layers[0].utilization == pytest.approx(4 / 16)

    def test_deconv_macs_use_output_resolution(self):
        specs = [LayerSpec("deconv", (9, 9), 8, 1, 2.0)]
        report = estimate(graph(specs, 10, 10), NPUSpec())
        assert report.total_macs == 81 * 8 * 400  # 20×20 output pixels


class TestReports:
    def _graphs(self):
        from repro.hw import fsrcnn_graph, sesr_hw_graph

        return {
            "FSRCNN": fsrcnn_graph(2, 270, 480),
            "SESR-M5": sesr_hw_graph(16, 5, 2, 270, 480),
        }

    def test_layer_breakdown_contents(self):
        from repro.hw import ETHOS_N78_4TOPS, estimate, layer_breakdown

        report = estimate(self._graphs()["SESR-M5"], ETHOS_N78_4TOPS)
        text = layer_breakdown(report)
        assert "first_5x5" in text and "bound" in text
        assert f"{report.runtime_ms:.2f} ms" in text

    def test_bottleneck(self):
        from repro.hw import ETHOS_N78_4TOPS, bottleneck, estimate

        report = estimate(self._graphs()["FSRCNN"], ETHOS_N78_4TOPS)
        name, share = bottleneck(report)
        assert 0 < share <= 1
        assert name == "deconv_9x9"  # FSRCNN's known hotspot

    def test_compare_models_table(self):
        from repro.hw import ETHOS_N78_4TOPS, compare_models

        text = compare_models(self._graphs(), ETHOS_N78_4TOPS, tile=(90, 120))
        assert "FSRCNN" in text and "SESR-M5" in text and "tiled" in text

    def test_markdown_report(self):
        from repro.hw import ETHOS_N78_4TOPS, markdown_report

        md = markdown_report(self._graphs(), ETHOS_N78_4TOPS,
                             include_layers=["SESR-M5"])
        assert md.startswith("# NPU performance report")
        assert "## SESR-M5" in md
        with pytest.raises(KeyError):
            markdown_report(self._graphs(), ETHOS_N78_4TOPS,
                            include_layers=["nope"])
