"""End-to-end tracing: serve and train emit the documented span trees."""

import numpy as np
import pytest

from repro.obs import Tracer, set_tracer, span_tree
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
)
from repro.serve.engine import plan_tiles


@pytest.fixture
def tracer():
    t = Tracer()
    prev = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(prev)


@pytest.fixture
def engine():
    registry = ModelRegistry(seed=0)
    eng = InferenceEngine(
        registry, ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=0),
    )
    yield eng
    eng.shutdown()


class TestEngineTracing:
    def test_request_span_tree_matches_tiling(self, tracer, engine):
        """request → one serve.tile per planned tile → stitch spans."""
        img = np.random.default_rng(0).random((40, 52))
        result = engine.upscale_ex(img)
        spans = tracer.ring.trace(result.trace_id)
        roots, children = span_tree(spans)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "serve.request"
        assert root.status == "ok"
        assert root.attrs["model"] == "M3"

        expected = len(plan_tiles(40, 52, engine.tile, engine.halo))
        tiles = [s for s in spans if s.name == "serve.tile"]
        assert len(tiles) == expected
        assert root.attrs["tiles"] == expected
        # Tile spans sit under the request (fan-out across worker threads
        # is carried by attach()), and the stitch phase is recorded.
        for t in tiles:
            assert t.trace_id == result.trace_id
        stitches = [s for s in spans if s.name == "serve.stitch"]
        assert stitches
        assert all(s.trace_id == result.trace_id for s in stitches)

    def test_client_supplied_trace_id_adopted(self, tracer, engine):
        img = np.random.default_rng(1).random((20, 20))
        result = engine.upscale_ex(img, trace_id="deadbeefdeadbeef")
        assert result.trace_id == "deadbeefdeadbeef"
        assert tracer.ring.trace("deadbeefdeadbeef")

    def test_fresh_trace_id_per_request(self, tracer, engine):
        img = np.random.default_rng(2).random((20, 20))
        r1 = engine.upscale_ex(img)
        r2 = engine.upscale_ex(img + 0.25)
        assert len(r1.trace_id) == 16
        assert r1.trace_id != r2.trace_id

    def test_cached_hit_is_traced_without_tiles(self, tracer):
        registry = ModelRegistry(seed=0)
        eng = InferenceEngine(
            registry, ModelKey(name="M3", scale=2),
            config=EngineConfig(workers=2, tile=16, cache_size=8),
        )
        try:
            img = np.random.default_rng(3).random((20, 20))
            eng.upscale_ex(img)
            result = eng.upscale_ex(img)
            assert result.cached
            spans = tracer.ring.trace(result.trace_id)
            (root,) = [s for s in spans if s.name == "serve.request"]
            assert root.attrs["cached"] is True
            assert not [s for s in spans if s.name == "serve.tile"]
        finally:
            eng.shutdown()


class TestTrainerTracing:
    def test_fit_epoch_step_phase_tree(self, tracer):
        from repro.core import SESR
        from repro.datasets import PatchSampler, SyntheticDataset
        from repro.train import Trainer

        ds = SyntheticDataset("div2k", n_images=2, size=(48, 48), scale=2,
                              seed=0)
        sampler = PatchSampler(ds, scale=2, patch_size=8, crops_per_image=2,
                               batch_size=2, seed=0)
        model = SESR.from_name("M3", scale=2, seed=0)
        result = Trainer(model, lr=1e-3).fit(sampler, epochs=2)

        spans = tracer.ring.spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        (fit,) = by_name["train.fit"]
        assert fit.attrs["epochs"] == 2
        assert fit.attrs["steps"] == result.steps
        assert len(by_name["train.epoch"]) == 2
        assert len(by_name["train.step"]) == result.steps
        for phase in ("train.forward", "train.backward", "train.optim"):
            assert len(by_name[phase]) == result.steps

        by_id = {s.span_id: s for s in spans}
        for step in by_name["train.step"]:
            assert by_id[step.parent_id].name == "train.epoch"
            assert "loss" in step.attrs
        for epoch in by_name["train.epoch"]:
            assert by_id[epoch.parent_id].name == "train.fit"
        for fwd in by_name["train.forward"]:
            assert by_id[fwd.parent_id].name == "train.step"
        # Everything shares the fit span's trace.
        assert {s.trace_id for s in spans} == {fit.trace_id}

    def test_guarded_step_records_verdict(self, tracer):
        from repro.core import SESR
        from repro.train import Trainer

        model = SESR.from_name("M3", scale=2, seed=0)
        trainer = Trainer(model, lr=1e-3)
        rng = np.random.default_rng(0)
        lr_b = rng.random((2, 8, 8, 1))
        hr_b = rng.random((2, 16, 16, 1))
        trainer.train_step(lr_b, hr_b)
        (step,) = [s for s in tracer.ring.spans() if s.name == "train.step"]
        assert step.attrs["verdict"] == "ok"
        assert step.attrs["batch"] == 2
