"""Unit tests for the span API: nesting, propagation, exporters."""

import json
import threading

import pytest

from repro.obs import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    Tracer,
    attach,
    current_span,
    get_tracer,
    new_trace_id,
    set_tracer,
    span_tree,
)
from repro.obs import trace as trace_mod


@pytest.fixture
def tracer():
    """A fresh default tracer, restored afterwards."""
    t = Tracer()
    prev = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(prev)


def test_single_span_identity_and_timing(tracer):
    with tracer.span("op", foo=1) as sp:
        assert current_span() is sp
        assert len(sp.trace_id) == 16
        assert len(sp.span_id) == 8
        assert sp.parent_id is None
    assert current_span() is None
    assert sp.status == "ok"
    assert sp.duration_ms >= 0.0
    assert sp.attrs == {"foo": 1}
    assert tracer.ring.spans() == [sp]


def test_nesting_same_thread(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    # Children export before parents (finish order).
    names = [s.name for s in tracer.ring.spans()]
    assert names == ["inner", "outer"]
    roots, children = span_tree(tracer.ring.spans())
    assert [r.name for r in roots] == ["outer"]
    assert [c.name for c in children[outer.span_id]] == ["inner"]


def test_forced_trace_id_applies_to_roots_only(tracer):
    tid = new_trace_id()
    with tracer.span("root", trace_id=tid) as root:
        assert root.trace_id == tid
        with tracer.span("child", trace_id="f" * 16) as child:
            # A child never forks a new trace.
            assert child.trace_id == tid


def test_exception_marks_error_status_and_still_exports(tracer):
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    (sp,) = tracer.ring.spans()
    assert sp.status == "error:ValueError"
    assert current_span() is None  # stack unwound
    agg = tracer.aggregates()["boom"]
    assert agg["count"] == 1 and agg["errors"] == 1


def test_attach_carries_context_across_threads(tracer):
    captured = {}

    def worker(ctx):
        with attach(ctx):
            with tracer.span("work") as sp:
                captured["span"] = sp

    with tracer.span("request") as root:
        th = threading.Thread(target=worker, args=(root.context,))
        th.start()
        th.join()
    child = captured["span"]
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id


def test_attach_none_is_noop(tracer):
    with attach(None):
        with tracer.span("free") as sp:
            assert sp.parent_id is None


def test_module_level_span_uses_current_default(tracer):
    with trace_mod.span("via-module"):
        pass
    assert [s.name for s in tracer.ring.spans()] == ["via-module"]
    assert get_tracer() is tracer


def test_ring_buffer_evicts_oldest():
    ring = RingBufferExporter(capacity=3)
    for i in range(5):
        ring.export(Span(name=f"s{i}", trace_id="t" * 16, span_id=f"{i:08d}"))
    assert len(ring) == 3
    assert [s.name for s in ring.spans()] == ["s2", "s3", "s4"]
    ring.clear()
    assert len(ring) == 0


def test_ring_trace_filter(tracer):
    with tracer.span("a", trace_id="a" * 16):
        pass
    with tracer.span("b", trace_id="b" * 16):
        pass
    assert [s.name for s in tracer.ring.trace("a" * 16)] == ["a"]


def test_jsonl_exporter_round_trips(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = Tracer(exporters=[JsonlExporter(str(path))])
    with tracer.span("outer", k="v"):
        with tracer.span("inner"):
            pass
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in rows] == ["inner", "outer"]
    assert rows[1]["attrs"] == {"k": "v"}
    assert rows[0]["parent_id"] == rows[1]["span_id"]
    assert all(r["status"] == "ok" for r in rows)


def test_aggregates_accumulate(tracer):
    for _ in range(3):
        with tracer.span("op"):
            pass
    agg = tracer.aggregates()["op"]
    assert agg["count"] == 3
    assert agg["total_ms"] >= 0.0
    assert agg["errors"] == 0


def test_span_tree_orphans_become_roots():
    spans = [
        Span(name="child", trace_id="t" * 16, span_id="c" * 8,
             parent_id="gone4321"),
    ]
    roots, children = span_tree(spans)
    assert roots == spans and children == {}


def test_concurrent_spans_stay_on_their_threads(tracer):
    """Each thread's stack is isolated; no cross-thread parenting."""
    errors = []

    def worker(i):
        try:
            with tracer.span(f"thread{i}") as sp:
                assert sp.parent_id is None
                assert current_span() is sp
        except AssertionError as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors
    assert len(tracer.ring) == 8
