"""Unit tests for the per-op profiler and its nn instrumentation."""

import json
import threading

import numpy as np
import pytest

from repro.obs import OpStats, Profiler, profile
from repro.obs import profiler as profiler_mod
from repro.nn import Tensor, no_grad
from repro.nn.ops import conv2d


def conv_macs(n, ho, wo, kh, kw, cin, cout):
    return n * ho * wo * kh * kw * cin * cout


def test_inactive_by_default():
    assert profiler_mod.ACTIVE is None


def test_profile_installs_and_uninstalls():
    with profile() as prof:
        assert profiler_mod.ACTIVE is prof
    assert profiler_mod.ACTIVE is None


def test_uninstalls_on_error():
    with pytest.raises(RuntimeError, match="boom"):
        with profile():
            raise RuntimeError("boom")
    assert profiler_mod.ACTIVE is None


def test_nesting_raises():
    with profile():
        with pytest.raises(RuntimeError, match="already active"):
            with profile():
                pass  # pragma: no cover
    assert profiler_mod.ACTIVE is None


def test_record_and_totals():
    prof = Profiler()
    prof.record("conv2d", 0.001, macs=100)
    prof.record("conv2d", 0.002, macs=200)
    prof.record("im2col", 0.0005)  # nested phase: wall only
    st = prof.stats()
    assert st["conv2d"].calls == 2
    assert st["conv2d"].macs == 300
    assert st["conv2d"].total_ms == pytest.approx(3.0)
    assert prof.total_macs() == 300
    # im2col is contained in conv2d's wall-clock — excluded from the total.
    assert prof.total_ms() == pytest.approx(3.0)
    prof.reset()
    assert prof.stats() == {}


def test_opstats_mean():
    st = OpStats(calls=4, total_ms=2.0, macs=8)
    assert st.mean_ms == 0.5
    assert OpStats().mean_ms == 0.0
    assert st.to_dict()["mean_ms"] == 0.5


def test_conv2d_records_analytic_macs(rng):
    x = Tensor(rng.random((2, 8, 8, 3)))
    w = Tensor(rng.random((3, 3, 3, 4)))
    with profile() as prof, no_grad():
        conv2d(x, w, padding="same")
    st = prof.stats()
    assert st["conv2d"].calls == 1
    assert st["conv2d"].macs == conv_macs(2, 8, 8, 3, 3, 3, 4)
    assert st["im2col"].calls == 1
    assert st["im2col"].macs == 0
    # The im2col phase is part of the conv2d call.
    assert st["im2col"].total_ms <= st["conv2d"].total_ms


def test_conv2d_backward_records(rng):
    x = Tensor(rng.random((1, 6, 6, 2)), requires_grad=True)
    w = Tensor(rng.random((3, 3, 2, 2)), requires_grad=True)
    with profile() as prof:
        out = conv2d(x, w, padding="same")
        out.sum().backward()
    st = prof.stats()
    assert st["conv2d_bwd"].calls == 1
    # dL/dW and dL/dX each cost one conv's worth of MACs.
    assert st["conv2d_bwd"].macs == 2 * conv_macs(1, 6, 6, 3, 3, 2, 2)


def test_matmul_records_and_no_double_count(rng):
    a = Tensor(rng.random((5, 7)))
    b = Tensor(rng.random((7, 3)))
    with profile() as prof, no_grad():
        a @ b
    st = prof.stats()
    assert st["matmul"].calls == 1
    assert st["matmul"].macs == 5 * 7 * 3
    # conv2d's internal GEMM must NOT show up as a matmul record.
    x = Tensor(rng.random((1, 4, 4, 2)))
    w = Tensor(rng.random((1, 1, 2, 2)))
    with profile() as prof2, no_grad():
        conv2d(x, w, padding="same")
    assert "matmul" not in prof2.stats()


def test_no_recording_when_inactive(rng):
    prof = Profiler()
    x = Tensor(rng.random((1, 4, 4, 1)))
    w = Tensor(rng.random((3, 3, 1, 1)))
    with no_grad():
        conv2d(x, w, padding="same")  # no profiler installed
    assert prof.stats() == {}


def test_summary_sorted_by_macs_then_ms():
    prof = Profiler()
    prof.record("small", 0.005, macs=10)
    prof.record("big", 0.001, macs=1000)
    prof.record("phase", 0.009, macs=0)
    assert list(prof.summary()) == ["big", "small", "phase"]


def test_thread_safety_exact_counts():
    prof = Profiler()

    def hammer():
        for _ in range(500):
            prof.record("op", 0.001, macs=2)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    st = prof.stats()["op"]
    assert st.calls == 8 * 500
    assert st.macs == 8 * 500 * 2
    assert st.total_ms == pytest.approx(8 * 500 * 1.0)


def test_write_jsonl(tmp_path):
    prof = Profiler()
    prof.record("conv2d", 0.001, macs=42)
    prof.record("matmul", 0.002, macs=7)
    path = tmp_path / "ops.jsonl"
    n = prof.write_jsonl(str(path), model="M5", mode="expanded")
    assert n == 2
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert {r["op"] for r in rows} == {"conv2d", "matmul"}
    assert all(r["model"] == "M5" and r["mode"] == "expanded" for r in rows)
    # Appends, does not truncate.
    prof.write_jsonl(str(path), model="M5", mode="expanded")
    assert len(path.read_text().splitlines()) == 4


def test_sesr_expanded_vs_collapsed_macs_match_fig3():
    """Measured per-op MACs reproduce the analytic Fig. 3 ratio (<5% off)."""
    from repro.core import SESR

    f, m, p, size, scale = 16, 5, 64, 8, 2
    measured = {}
    for mode in ("expanded", "collapsed"):
        model = SESR(scale=scale, f=f, m=m, expansion=p, mode=mode, seed=0)
        model.train()
        x = Tensor(np.random.default_rng(0).random((1, size, size, 1)))
        with profile() as prof:
            model(x)
        measured[mode] = prof.total_macs()

    px = size * size
    expanded = px * (
        (25 * 1 * p + p * f)
        + m * (9 * f * p + p * f)
        + (25 * f * p + p * scale * scale)
    )
    # Collapsed-mode training: compose weights per step (input-independent)
    # then run the cheap convolution.
    collapse_cost = (
        25 * 1 * p * f + m * 9 * f * p * f + 25 * f * p * scale * scale
    )
    collapsed = px * (
        25 * 1 * f + m * 9 * f * f + 25 * f * scale * scale
    ) + collapse_cost

    assert measured["expanded"] == expanded
    assert measured["collapsed"] == pytest.approx(collapsed, rel=0.05)
    ratio_measured = measured["expanded"] / measured["collapsed"]
    ratio_analytic = expanded / collapsed
    assert ratio_measured == pytest.approx(ratio_analytic, rel=0.05)
