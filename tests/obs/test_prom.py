"""Unit tests for the Prometheus text-format renderer."""

from repro.obs import Profiler, Tracer, render_prometheus, sanitize_metric_name
from repro.obs.prom import _escape_label, _fmt


def test_sanitize_metric_name():
    assert sanitize_metric_name("engine.requests") == "repro_engine_requests"
    assert sanitize_metric_name("a.b-c d") == "repro_a_b_c_d"
    assert sanitize_metric_name("x", prefix="") == "x"
    # A leading digit without a prefix gets padded to stay legal.
    assert sanitize_metric_name("9lives", prefix="")[0] == "_"


def test_fmt_special_values():
    assert _fmt(float("nan")) == "NaN"
    assert _fmt(float("inf")) == "+Inf"
    assert _fmt(float("-inf")) == "-Inf"
    assert _fmt(3.0) == "3"
    assert float(_fmt(3.5)) == 3.5


def test_escape_label():
    assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_counters_get_total_suffix_once():
    text = render_prometheus({
        "counters": {"engine.requests": 5, "engine.tiles_total": 7},
    })
    assert "# TYPE repro_engine_requests_total counter" in text
    assert "repro_engine_requests_total 5" in text
    # No double suffix for names that already end in _total.
    assert "repro_engine_tiles_total 7" in text
    assert "tiles_total_total" not in text


def test_gauges_and_states():
    text = render_prometheus({
        "gauges": {"engine.queue_depth": 3.0},
        "states": {"engine.breaker": "open", "engine.mode": ""},
    })
    assert "# TYPE repro_engine_queue_depth gauge" in text
    assert "repro_engine_queue_depth 3" in text
    assert 'repro_engine_breaker{state="open"} 1' in text
    assert 'repro_engine_mode{state="unknown"} 1' in text


def test_histogram_renders_as_summary():
    text = render_prometheus({
        "histograms": {
            "engine.latency_ms": {
                "count": 4, "mean": 2.5, "min": 1.0, "max": 4.0,
                "p50": 2.0, "p95": 4.0, "p99": 4.0,
            },
        },
    })
    assert "# TYPE repro_engine_latency_ms summary" in text
    assert 'repro_engine_latency_ms{quantile="0.5"} 2' in text
    assert 'repro_engine_latency_ms{quantile="0.95"} 4' in text
    assert "repro_engine_latency_ms_sum 10" in text  # mean * count
    assert "repro_engine_latency_ms_count 4" in text


def test_tracer_aggregates_render():
    tracer = Tracer()
    with tracer.span("serve.request"):
        pass
    try:
        with tracer.span("serve.request"):
            raise KeyError("x")
    except KeyError:
        pass
    text = render_prometheus({}, tracer=tracer)
    assert 'repro_trace_spans_total{name="serve.request"} 2' in text
    assert 'repro_trace_span_errors_total{name="serve.request"} 1' in text
    assert 'repro_trace_span_ms_total{name="serve.request"}' in text


def test_profiler_totals_render():
    prof = Profiler()
    prof.record("conv2d", 0.002, macs=1000)
    text = render_prometheus({}, profiler=prof)
    assert 'repro_profile_op_calls_total{op="conv2d"} 1' in text
    assert 'repro_profile_op_macs_total{op="conv2d"} 1000' in text
    assert 'repro_profile_op_ms_total{op="conv2d"} 2' in text


def test_extra_snapshot_sections_ignored():
    text = render_prometheus({
        "counters": {"x": 1},
        "cache": {"entries": 3},
        "config": {"workers": 4},
    })
    assert "cache" not in text and "config" not in text


def test_empty_everything_still_terminates():
    assert render_prometheus({}) == "\n"


def test_output_is_newline_terminated_and_no_blank_lines():
    tracer = Tracer()
    with tracer.span("op"):
        pass
    text = render_prometheus({"counters": {"c": 1}}, tracer=tracer)
    assert text.endswith("\n")
    assert all(line.strip() for line in text.splitlines())
