"""Engine tests: bit-identity, micro-batching, timeout/overload/shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.deploy import receptive_radius, tiled_upscale
from repro.serve import (
    EngineClosed,
    EngineConfig,
    EngineError,
    EngineOverloaded,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    RequestTimeout,
    plan_tiles,
    predict_batch,
)
from repro.train import predict_image

KEY = ModelKey(name="M3", scale=2)


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


def make_engine(registry, **kwargs):
    """Build an engine from flat kwargs (collaborators split from config)."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("tile", 16)
    extras = {
        k: kwargs.pop(k)
        for k in ("telemetry", "breaker", "fault_injector")
        if k in kwargs
    }
    return InferenceEngine(
        registry, KEY, config=EngineConfig(**kwargs), **extras
    )


class _SlowModel:
    """Duck-typed model wrapper that sleeps before delegating."""

    def __init__(self, inner, delay):
        self._inner = inner
        self.delay = delay

    def eval(self):
        return self

    def __call__(self, x):
        time.sleep(self.delay)
        return self._inner(x)


class _BrokenModel:
    def eval(self):
        return self

    def __call__(self, x):
        raise RuntimeError("kaboom")


class TestPlanTiles:
    def test_covers_frame_exactly_once(self):
        specs = plan_tiles(50, 37, (16, 16), halo=4)
        covered = np.zeros((50, 37), dtype=int)
        for t in specs:
            covered[t.y0 : t.y1, t.x0 : t.x1] += 1
        assert np.all(covered == 1)
        for t in specs:
            assert t.hy0 <= t.y0 and t.hy1 >= t.y1
            assert 0 <= t.hx0 and t.hx1 <= 37

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            plan_tiles(10, 10, (0, 4), halo=1)


class TestBitIdentity:
    def test_engine_matches_tiled_upscale(self, registry):
        rng = np.random.default_rng(0)
        img = rng.random((50, 37)).astype(np.float32)
        with make_engine(registry, cache_size=0) as eng:
            out = eng.upscale(img)
            ref = tiled_upscale(eng.model, img, 2, tile=(16, 16))
        assert np.array_equal(out, ref)

    def test_engine_matches_full_frame_predict(self, registry):
        # When one tile covers the frame the halo window clamps to the
        # image and the engine runs the exact cmd_upscale predict path —
        # bit-identical by construction.
        rng = np.random.default_rng(1)
        img = rng.random((33, 41)).astype(np.float32)
        with make_engine(registry, cache_size=0, tile=64) as eng:
            out = eng.upscale(img)
            ref = predict_image(eng.model, img)
        assert np.array_equal(out, ref)

    def test_multi_tile_close_to_full_frame(self, registry):
        # Across tile boundaries BLAS may reassociate (~1 ulp); quality is
        # unaffected, which is what the halo correctness actually buys.
        rng = np.random.default_rng(5)
        img = rng.random((33, 41)).astype(np.float32)
        with make_engine(registry, cache_size=0) as eng:
            out = eng.upscale(img)
            ref = predict_image(eng.model, img)
        assert np.allclose(out, ref, atol=1e-6)

    def test_microbatch_close_to_exact(self, registry):
        rng = np.random.default_rng(2)
        img = rng.random((64, 64)).astype(np.float32)
        with make_engine(registry, cache_size=0) as exact, \
                make_engine(registry, cache_size=0, microbatch=True) as micro:
            a = exact.upscale(img)
            b = micro.upscale(img)
            assert micro.telemetry.counter("engine.microbatches").value > 0
        assert np.allclose(a, b, atol=1e-5)

    def test_predict_batch_matches_per_image(self, registry):
        model = registry.get(KEY)
        rng = np.random.default_rng(3)
        patches = rng.random((4, 20, 20, 1)).astype(np.float32)
        batched = predict_batch(model, patches)
        for i in range(4):
            single = predict_image(model, patches[i, :, :, 0])
            assert np.allclose(batched[i], single, atol=1e-6)

    def test_default_halo_is_receptive_radius(self, registry):
        with make_engine(registry) as eng:
            assert eng.halo == receptive_radius(eng.model)


class TestValidationAndCache:
    def test_rejects_non_2d_input(self, registry):
        with make_engine(registry) as eng:
            with pytest.raises(ValueError, match="2-D"):
                eng.upscale(np.zeros((4, 4, 3), dtype=np.float32))

    def test_cache_hit_accounting(self, registry):
        rng = np.random.default_rng(4)
        img = rng.random((20, 20)).astype(np.float32)
        with make_engine(registry, cache_size=4) as eng:
            first = eng.upscale(img)
            second = eng.upscale(img)
            assert np.array_equal(first, second)
            stats = eng.cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            snap = eng.stats()
            assert snap["counters"]["engine.cache_hits"] == 1
            assert snap["counters"]["engine.requests_total"] == 2
            # Only the miss ran inference.
            assert snap["counters"]["engine.requests_ok"] == 1

    def test_stats_shape(self, registry):
        with make_engine(registry) as eng:
            eng.upscale(np.zeros((12, 12), dtype=np.float32))
            snap = eng.stats()
        assert snap["config"]["model"] == "M3"
        assert snap["registry"]["models_loaded"] >= 1
        hist = snap["histograms"]["engine.request_latency_ms"]
        assert hist["count"] == 1 and hist["p95"] > 0


class TestFailureModes:
    def test_timeout_cancels_request(self, registry):
        with make_engine(registry, workers=1) as eng:
            eng.model = _SlowModel(eng.model, delay=0.3)
            start = time.perf_counter()
            with pytest.raises(RequestTimeout):
                eng.upscale(np.zeros((20, 20), dtype=np.float32),
                            timeout=0.05)
            assert time.perf_counter() - start < 2.0
            assert eng.stats()["counters"]["engine.requests_timeout"] == 1

    def test_overload_sheds_when_slots_busy(self, registry):
        with make_engine(registry, workers=1, max_pending=1) as eng:
            eng.model = _SlowModel(eng.model, delay=0.4)
            errors = []

            def slow_request():
                try:
                    eng.upscale(np.zeros((16, 16), dtype=np.float32))
                except EngineError as exc:
                    errors.append(exc)

            t = threading.Thread(target=slow_request)
            t.start()
            time.sleep(0.1)  # let it take the only slot
            with pytest.raises(EngineOverloaded):
                eng.upscale(np.ones((16, 16), dtype=np.float32))
            t.join()
            assert not errors
            snap = eng.stats()
            assert snap["counters"]["engine.requests_overloaded"] == 1

    def test_worker_exception_propagates(self, registry):
        with make_engine(registry) as eng:
            eng.model = _BrokenModel()
            with pytest.raises(EngineError, match="kaboom"):
                eng.upscale(np.zeros((16, 16), dtype=np.float32))
            assert eng.stats()["counters"]["engine.requests_error"] == 1

    def test_worker_failure_does_not_wedge_engine(self, registry):
        with make_engine(registry, cache_size=0) as eng:
            good = eng.model
            eng.model = _BrokenModel()
            with pytest.raises(EngineError):
                eng.upscale(np.zeros((16, 16), dtype=np.float32))
            eng.model = good
            out = eng.upscale(np.zeros((16, 16), dtype=np.float32))
            assert out.shape == (32, 32)


class TestShutdown:
    def test_submit_after_shutdown_raises(self, registry):
        eng = make_engine(registry)
        eng.shutdown()
        assert eng.closed
        with pytest.raises(EngineClosed):
            eng.upscale(np.zeros((8, 8), dtype=np.float32))

    def test_shutdown_is_idempotent(self, registry):
        eng = make_engine(registry)
        eng.shutdown()
        eng.shutdown()  # second call is a no-op

    def test_graceful_shutdown_finishes_queued_work(self, registry):
        eng = make_engine(registry, workers=1)
        eng.model = _SlowModel(eng.model, delay=0.05)
        results = []

        def request():
            results.append(eng.upscale(np.zeros((20, 20), dtype=np.float32)))

        t = threading.Thread(target=request)
        t.start()
        time.sleep(0.02)  # request in flight
        eng.shutdown(wait=True)
        t.join()
        assert len(results) == 1 and results[0].shape == (40, 40)

    def test_abrupt_shutdown_fails_queued_requests(self, registry):
        eng = make_engine(registry, workers=1)
        eng.model = _SlowModel(eng.model, delay=0.3)
        outcomes = []

        def request(img):
            try:
                eng.upscale(img, timeout=5.0)
                outcomes.append("ok")
            except EngineError:
                outcomes.append("error")

        # 16x16 images are a single tile job each: the first occupies the
        # worker, the second sits whole in the queue when shutdown hits.
        threads = [
            threading.Thread(
                target=request,
                args=(np.full((16, 16), i * 0.1, dtype=np.float32),),
            )
            for i in range(2)
        ]
        threads[0].start()
        time.sleep(0.1)  # first request busy on the single worker
        threads[1].start()
        time.sleep(0.05)
        eng.shutdown(wait=False)
        for t in threads:
            t.join()
        # The in-flight request finishes; the queued one is cancelled.
        assert sorted(outcomes) == ["error", "ok"]
