"""Registry tests: memoization, name resolution, precision keying."""

import os
import threading

import numpy as np
import pytest

from repro.core.sesr import CollapsedSESR
from repro.deploy import QuantizedSESR
from repro.nn import save_state
from repro.serve import ModelKey, ModelRegistry, build_training_model


class TestModelKey:
    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            ModelKey(name="M3", scale=2, precision="fp16")

    def test_is_hashable_and_comparable(self):
        a = ModelKey("M3", 2)
        b = ModelKey("M3", 2)
        assert a == b and hash(a) == hash(b)
        assert a != ModelKey("M3", 2, precision="int8")


class TestNameResolution:
    def test_short_and_zoo_names_resolve(self):
        for name in ("M3", "m3", "SESR-M3"):
            model = build_training_model(name, scale=2)
            assert model.f == 16 and model.m == 3

    def test_fsrcnn_resolves(self):
        model = build_training_model("FSRCNN", scale=2)
        assert type(model).__name__ == "FSRCNN"

    def test_unknown_name_lists_deployable_entries(self):
        with pytest.raises(KeyError, match="SESR-M5"):
            build_training_model("resnet50", scale=2)


class TestMemoization:
    def test_collapse_happens_exactly_once(self):
        reg = ModelRegistry()
        key = ModelKey("M3", 2)
        first = reg.get(key)
        for _ in range(5):
            assert reg.get(key) is first
        assert reg.collapse_count(key) == 1
        assert isinstance(first, CollapsedSESR)

    def test_concurrent_first_requests_collapse_once(self):
        reg = ModelRegistry()
        key = ModelKey("M3", 2)
        results = []
        barrier = threading.Barrier(4)

        def fetch():
            barrier.wait()
            results.append(reg.get(key))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.collapse_count(key) == 1
        assert all(r is results[0] for r in results)

    def test_distinct_keys_distinct_models(self):
        reg = ModelRegistry()
        m_fp32 = reg.get(ModelKey("M3", 2))
        m_int8 = reg.get(ModelKey("M3", 2, precision="int8"))
        assert m_fp32 is not m_int8
        assert isinstance(m_int8, QuantizedSESR)
        assert reg.stats()["models_loaded"] == 2

    def test_evict_forces_rebuild(self):
        reg = ModelRegistry()
        key = ModelKey("M3", 2)
        first = reg.get(key)
        assert reg.evict(key)
        assert not reg.evict(key)
        assert reg.get(key) is not first
        assert reg.collapse_count(key) == 2


class TestCheckpointLoading:
    def test_ckpt_changes_served_weights(self, tmp_path):
        trained = build_training_model("M3", scale=2)
        for p in trained.parameters():
            p.data += 0.01  # make the checkpoint differ from paper init
        ckpt = os.path.join(tmp_path, "m3.npz")
        save_state(trained, ckpt)

        reg = ModelRegistry()
        fresh = reg.get(ModelKey("M3", 2))
        loaded = reg.get(ModelKey("M3", 2, ckpt=ckpt))
        assert not np.array_equal(
            fresh.first.weight.data, loaded.first.weight.data
        )
        # The ckpt-keyed entry matches collapsing the checkpoint directly.
        assert np.array_equal(
            loaded.first.weight.data, trained.collapse().first.weight.data
        )
