"""The versioned ``/v1`` HTTP API: routes, error schema, deprecation.

Pins the redesigned wire contract from ``docs/serving.md``:

* ``/v1/upscale``, ``/v1/healthz``, ``/v1/stats``, ``/v1/metrics`` are
  the documented routes and carry no deprecation signal;
* the unversioned originals still work byte-for-byte but answer with
  ``Deprecation: true`` and a ``Link: ...; rel="successor-version"``
  header naming their replacement;
* every non-2xx body is ``{"error": {code, message, trace_id}}``, and
  header validation (Content-Type, Content-Length) happens before the
  body is read.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import decode_netpbm, encode_netpbm
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)


@pytest.fixture(scope="module")
def server():
    engine = InferenceEngine(
        ModelRegistry(), ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=8),
    )
    srv = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


def url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def post(server, path, body, headers=None):
    req = urllib.request.Request(
        url(server, path), data=body, method="POST", headers=headers or {}
    )
    return urllib.request.urlopen(req, timeout=30)


def get(server, path):
    return urllib.request.urlopen(url(server, path), timeout=30)


def error_body(err: urllib.error.HTTPError) -> dict:
    detail = json.load(err)["error"]
    assert set(detail) == {"code", "message", "trace_id"}
    assert len(detail["trace_id"]) == 16
    return detail


GREY = encode_netpbm(
    np.random.default_rng(0).random((12, 12)).astype(np.float32)
)


# --------------------------------------------------------------------- #
# v1 routes
# --------------------------------------------------------------------- #
class TestV1Routes:
    def test_healthz(self, server):
        with get(server, "/v1/healthz") as resp:
            body = json.load(resp)
            assert resp.headers.get("Deprecation") is None
        assert body["status"] == "ok"
        assert body["api_version"] == "v1"

    def test_stats_has_batching_section(self, server):
        with get(server, "/v1/stats") as resp:
            stats = json.load(resp)
        assert "batching" in stats
        assert stats["batching"]["window_ms"] == 0.0
        assert stats["config"]["model"] == "M3"

    def test_metrics_is_prometheus_text(self, server):
        with post(server, "/v1/upscale", GREY):  # ensure metrics exist
            pass
        with get(server, "/v1/metrics") as resp:
            assert "text/plain" in resp.headers["Content-Type"]
            text = resp.read().decode()
        assert "repro_engine_requests_total" in text
        assert "repro_engine_batch_size" in text

    def test_upscale_round_trip(self, server):
        with post(server, "/v1/upscale", GREY) as resp:
            assert resp.headers.get("Deprecation") is None
            assert resp.headers["X-Degraded"] == "false"
            out = decode_netpbm(resp.read())
        assert out.shape == (24, 24)

    def test_unknown_v1_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/v1/nope")
        assert err.value.code == 404
        assert error_body(err.value)["code"] == "not_found"


# --------------------------------------------------------------------- #
# unversioned compatibility
# --------------------------------------------------------------------- #
class TestDeprecatedRoutes:
    @pytest.mark.parametrize("path", ["/healthz", "/stats", "/metrics"])
    def test_legacy_get_works_with_deprecation_headers(self, server, path):
        with get(server, path) as resp:
            assert resp.status == 200
            assert resp.headers["Deprecation"] == "true"
            link = resp.headers["Link"]
        assert f"</v1{path}>" in link and 'rel="successor-version"' in link

    def test_legacy_upscale_works_with_deprecation_headers(self, server):
        with post(server, "/upscale", GREY) as resp:
            assert resp.headers["Deprecation"] == "true"
            assert "</v1/upscale>" in resp.headers["Link"]
            legacy = resp.read()
        with post(server, "/v1/upscale", GREY) as resp:
            assert decode_netpbm(resp.read()).tobytes() == \
                decode_netpbm(legacy).tobytes()


# --------------------------------------------------------------------- #
# error schema
# --------------------------------------------------------------------- #
class TestErrorSchema:
    def test_bad_payload_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"not a netpbm image")
        assert err.value.code == 400
        detail = error_body(err.value)
        assert detail["code"] == "bad_request"
        assert "netpbm" in detail["message"]

    def test_unsupported_media_type_is_415(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", GREY,
                 headers={"Content-Type": "application/json"})
        assert err.value.code == 415
        assert error_body(err.value)["code"] == "unsupported_media_type"

    @pytest.mark.parametrize("ctype", [
        "image/x-portable-graymap", "application/octet-stream",
        "text/plain; charset=utf-8",
    ])
    def test_accepted_media_types(self, server, ctype):
        with post(server, "/v1/upscale", GREY,
                  headers={"Content-Type": ctype}) as resp:
            assert resp.status == 200

    def test_error_adopts_client_trace_id(self, server):
        tid = "deadbeefdeadbeef"
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"junk",
                 headers={"X-Trace-Id": tid})
        assert error_body(err.value)["trace_id"] == tid
        assert err.value.headers["X-Trace-Id"] == tid

    def test_error_mints_trace_id_when_client_sends_none(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"junk")
        detail = error_body(err.value)
        assert detail["trace_id"] == err.value.headers["X-Trace-Id"]
