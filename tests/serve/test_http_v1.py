"""The versioned ``/v1`` HTTP API: routes, error schema, 308 redirects.

Pins the redesigned wire contract from ``docs/serving.md``:

* ``/v1/upscale``, ``/v1/healthz``, ``/v1/stats``, ``/v1/metrics`` are
  the documented routes and carry no deprecation signal;
* the unversioned originals answer **308 Permanent Redirect** with a
  ``Location: /v1/...`` header and an empty body (they spent a release
  serving dual-stack behind ``Deprecation``/``Link`` headers first);
* every non-2xx body is ``{"error": {code, message, trace_id}}``, and
  header validation (Content-Type, Content-Length) happens before the
  body is read.

Whether urllib follows a 308 depends on the interpreter (3.11 added
``http_error_308`` for body-less methods; a POST always surfaces the
redirect because 308 forbids the POST→GET rewrite), so the redirect
responses are asserted over raw ``http.client`` — status + ``Location``
exactly as they appear on the wire.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import decode_netpbm, encode_netpbm
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)


@pytest.fixture(scope="module")
def server():
    engine = InferenceEngine(
        ModelRegistry(), ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=8),
    )
    srv = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


def url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def post(server, path, body, headers=None):
    req = urllib.request.Request(
        url(server, path), data=body, method="POST", headers=headers or {}
    )
    return urllib.request.urlopen(req, timeout=30)


def get(server, path):
    return urllib.request.urlopen(url(server, path), timeout=30)


def error_body(err: urllib.error.HTTPError) -> dict:
    detail = json.load(err)["error"]
    assert set(detail) == {"code", "message", "trace_id"}
    assert len(detail["trace_id"]) == 16
    return detail


GREY = encode_netpbm(
    np.random.default_rng(0).random((12, 12)).astype(np.float32)
)


# --------------------------------------------------------------------- #
# v1 routes
# --------------------------------------------------------------------- #
class TestV1Routes:
    def test_healthz(self, server):
        with get(server, "/v1/healthz") as resp:
            body = json.load(resp)
            assert resp.headers.get("Deprecation") is None
        assert body["status"] == "ok"
        assert body["api_version"] == "v1"

    def test_stats_has_batching_section(self, server):
        with get(server, "/v1/stats") as resp:
            stats = json.load(resp)
        assert "batching" in stats
        assert stats["batching"]["window_ms"] == 0.0
        assert stats["config"]["model"] == "M3"

    def test_metrics_is_prometheus_text(self, server):
        with post(server, "/v1/upscale", GREY):  # ensure metrics exist
            pass
        with get(server, "/v1/metrics") as resp:
            assert "text/plain" in resp.headers["Content-Type"]
            text = resp.read().decode()
        assert "repro_engine_requests_total" in text
        assert "repro_engine_batch_size" in text

    def test_upscale_round_trip(self, server):
        with post(server, "/v1/upscale", GREY) as resp:
            assert resp.headers.get("Deprecation") is None
            assert resp.headers["X-Degraded"] == "false"
            out = decode_netpbm(resp.read())
        assert out.shape == (24, 24)

    def test_unknown_v1_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/v1/nope")
        assert err.value.code == 404
        assert error_body(err.value)["code"] == "not_found"


# --------------------------------------------------------------------- #
# unversioned paths: 308 Permanent Redirect
# --------------------------------------------------------------------- #
def raw_request(server, method, path, body=None):
    """One request over http.client — no redirect following, ever."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestLegacyRedirects:
    @pytest.mark.parametrize("path", ["/healthz", "/stats", "/metrics"])
    def test_legacy_get_redirects_with_308(self, server, path):
        status, headers, body = raw_request(server, "GET", path)
        assert status == 308
        assert headers["Location"] == f"/v1{path}"
        assert body == b""

    def test_legacy_upscale_redirects_with_308(self, server):
        status, headers, body = raw_request(server, "POST", "/upscale", GREY)
        assert status == 308
        assert headers["Location"] == "/v1/upscale"
        assert body == b""

    def test_manual_redirect_follow_round_trips(self, server):
        """A client that replays POST (method + body) against Location —
        what 308 mandates — gets the normal /v1 response."""
        _, headers, _ = raw_request(server, "POST", "/upscale", GREY)
        with post(server, headers["Location"], GREY) as resp:
            assert resp.headers["X-Degraded"] == "false"
            assert decode_netpbm(resp.read()).shape == (24, 24)

    def test_urllib_post_surfaces_the_redirect(self, server):
        # 308 forbids rewriting POST to GET, so urllib refuses to follow
        # and the application sees the redirect itself.
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/upscale", GREY)
        assert err.value.code == 308
        assert err.value.headers["Location"] == "/v1/upscale"

    def test_unknown_unversioned_path_is_404_not_redirect(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404


# --------------------------------------------------------------------- #
# error schema
# --------------------------------------------------------------------- #
class TestErrorSchema:
    def test_bad_payload_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"not a netpbm image")
        assert err.value.code == 400
        detail = error_body(err.value)
        assert detail["code"] == "bad_request"
        assert "netpbm" in detail["message"]

    def test_unsupported_media_type_is_415(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", GREY,
                 headers={"Content-Type": "application/json"})
        assert err.value.code == 415
        assert error_body(err.value)["code"] == "unsupported_media_type"

    @pytest.mark.parametrize("ctype", [
        "image/x-portable-graymap", "application/octet-stream",
        "text/plain; charset=utf-8",
    ])
    def test_accepted_media_types(self, server, ctype):
        with post(server, "/v1/upscale", GREY,
                  headers={"Content-Type": ctype}) as resp:
            assert resp.status == 200

    def test_error_adopts_client_trace_id(self, server):
        tid = "deadbeefdeadbeef"
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"junk",
                 headers={"X-Trace-Id": tid})
        assert error_body(err.value)["trace_id"] == tid
        assert err.value.headers["X-Trace-Id"] == tid

    def test_error_mints_trace_id_when_client_sends_none(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"junk")
        detail = error_body(err.value)
        assert detail["trace_id"] == err.value.headers["X-Trace-Id"]
