"""EngineConfig: validation, normalisation, and config-only construction."""

import dataclasses
import json

import pytest

from repro.resilience import RetryPolicy
from repro.serve import EngineConfig, InferenceEngine, ModelKey, ModelRegistry


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


KEY = ModelKey("M3", 2)


# --------------------------------------------------------------------- #
# the value object
# --------------------------------------------------------------------- #
def test_defaults_are_valid_and_frozen():
    cfg = EngineConfig()
    assert cfg.workers == 4
    assert cfg.tile == (96, 96)  # int normalised to a pair
    assert cfg.batch_window_ms == 0.0  # coalescing off by default
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.workers = 8


def test_tile_pair_normalisation():
    assert EngineConfig(tile=(48, 64)).tile == (48, 64)
    assert EngineConfig(tile=[32, 32]).tile == (32, 32)


@pytest.mark.parametrize("bad", [
    {"workers": 0},
    {"tile": 0},
    {"tile": (8, 0)},
    {"tile": (8, 8, 8)},
    {"halo": -1},
    {"max_batch": 0},
    {"batch_window_ms": -1.0},
    {"cache_size": -1},
    {"max_pending": 0},
    {"default_timeout": 0.0},
    {"retry": "nope"},
    {"breaker_threshold": 0},
    {"breaker_cooldown": -1.0},
    {"supervise_interval": 0.0},
    {"wedge_timeout": 0.0},
    {"worker_backend": "fibers"},
    {"gemm_backend": "cublas"},
])
def test_validation_rejects(bad):
    with pytest.raises((ValueError, TypeError)):
        EngineConfig(**bad)


def test_replace_revalidates():
    cfg = EngineConfig(workers=2)
    assert cfg.replace(workers=6).workers == 6
    assert cfg.workers == 2  # original untouched
    with pytest.raises(ValueError):
        cfg.replace(workers=-1)


def test_to_dict_is_json_serialisable():
    cfg = EngineConfig(tile=48, retry=RetryPolicy(max_attempts=2))
    d = json.loads(json.dumps(cfg.to_dict()))
    assert d["tile"] == [48, 48]
    assert d["retry"]["max_attempts"] == 2


def test_describe_mentions_every_knob_group():
    text = EngineConfig(batch_window_ms=4.0, degraded_mode=True).describe()
    assert "window 4 ms" in text
    assert "workers" in text and "admission" in text and "resilience" in text


# --------------------------------------------------------------------- #
# engine construction
# --------------------------------------------------------------------- #
def test_engine_accepts_config(registry):
    cfg = EngineConfig(workers=1, tile=32, cache_size=0, supervise=False)
    eng = InferenceEngine(registry, KEY, config=cfg)
    try:
        assert eng.config is cfg
        assert eng.tile == (32, 32)
        stats_cfg = eng.stats()["config"]
        assert stats_cfg["workers"] == 1
        assert stats_cfg["batch_window_ms"] == 0.0
        assert stats_cfg["model"] == "M3"
    finally:
        eng.shutdown()


@pytest.mark.parametrize("legacy", [
    {"workers": 2},
    {"tile": 32},
    {"retry": RetryPolicy(max_attempts=2)},
    {"compiled": False},
    {"wrokers": 2},  # typos fail identically — no shim to catch them
])
def test_legacy_kwargs_raise_type_error(registry, legacy):
    """The two-release deprecation shim is gone: kwarg-style construction
    is a plain TypeError now, like any unknown keyword argument."""
    with pytest.raises(TypeError):
        InferenceEngine(registry, KEY, **legacy)


def test_gemm_backend_default_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_GEMM_BACKEND", "blocked")
    assert EngineConfig().gemm_backend == "blocked"
    monkeypatch.delenv("REPRO_GEMM_BACKEND")
    assert EngineConfig().gemm_backend == "blas"
    # explicit always beats the env var
    monkeypatch.setenv("REPRO_GEMM_BACKEND", "auto")
    assert EngineConfig(gemm_backend="blas").gemm_backend == "blas"


def test_describe_mentions_gemm_backend():
    assert "gemm blocked" in EngineConfig(
        gemm_backend="blocked"
    ).describe()
