"""BatchScheduler policy tests: windows, fair share, legacy pinning.

The scheduler takes an injectable clock, so every window policy here is
tested deterministically — no sleeps, no timing flake.
"""

import threading

import pytest

from repro.serve import BatchScheduler, TileJob


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def job(request="r", group="g", batchable=True):
    return TileJob(request, specs=["spec"], group=group, batchable=batchable)


# --------------------------------------------------------------------- #
# window-zero: the legacy contract
# --------------------------------------------------------------------- #
def test_window_zero_dispatches_singletons_in_arrival_order():
    s = BatchScheduler(max_batch=8, window=0.0)
    jobs = [job(request=f"r{i}") for i in range(4)]
    for j in jobs:
        s.put(j)
    got = [s.get()[0] for _ in range(4)]
    assert got == jobs  # strict FIFO, one job per dispatch, no coalescing


def test_window_zero_never_batches_even_under_backlog():
    s = BatchScheduler(max_batch=8, window=0.0)
    for i in range(10):
        s.put(job(request=f"r{i}"))
    assert all(len(s.get()) == 1 for _ in range(10))


# --------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------- #
def test_full_batch_dispatches_before_window_expires():
    clock = FakeClock()
    s = BatchScheduler(max_batch=3, window=10.0, clock=clock)
    for i in range(3):
        s.put(job(request=f"r{i}"))
    batch = s.get(timeout=0)
    assert len(batch) == 3  # full batch: no need to wait out the window


def test_window_expiry_flushes_partial_batch():
    clock = FakeClock()
    s = BatchScheduler(max_batch=8, window=5.0, clock=clock)
    s.put(job(request="a"))
    s.put(job(request="b"))
    assert s.get(timeout=0) is None  # window still open, nothing ready
    clock.now = 5.0
    batch = s.get(timeout=0)
    assert batch is not None and len(batch) == 2


def test_groups_do_not_mix():
    clock = FakeClock()
    s = BatchScheduler(max_batch=8, window=1.0, clock=clock)
    s.put(job(request="a", group="64x64"))
    s.put(job(request="b", group="32x32"))
    clock.now = 1.0
    b1, b2 = s.get(timeout=0), s.get(timeout=0)
    assert len(b1) == 1 and len(b2) == 1
    assert b1[0].group != b2[0].group


def test_oldest_group_dispatches_first():
    clock = FakeClock()
    s = BatchScheduler(max_batch=8, window=2.0, clock=clock)
    s.put(job(request="old", group="A"))
    clock.now = 1.0
    s.put(job(request="new", group="B"))
    clock.now = 3.0  # both windows expired
    assert s.get(timeout=0)[0].group == "A"


def test_fair_share_round_robin_across_requests():
    clock = FakeClock()
    s = BatchScheduler(max_batch=4, window=1.0, clock=clock)
    giant, small = object(), object()
    giant_jobs = [job(request=giant) for _ in range(100)]
    for j in giant_jobs[:50]:
        s.put(j)
    s.put(job(request=small))
    for j in giant_jobs[50:]:
        s.put(j)
    batch = s.get(timeout=0)  # 51+ pending >= max_batch: ready now
    # The small request rides the FIRST batch instead of queueing behind
    # 100 giant tiles, and the giant still fills the rest of the batch.
    owners = [b.request for b in batch]
    assert small in owners
    assert owners.count(giant) == 3


def test_express_jobs_bypass_the_window():
    clock = FakeClock()
    s = BatchScheduler(max_batch=8, window=60.0, clock=clock)
    s.put(job(request="b", group="g"))                 # batchable, waits
    s.put(job(request="e", group=None, batchable=False))  # express
    batch = s.get(timeout=0)
    assert len(batch) == 1 and batch[0].request == "e"
    assert s.get(timeout=0) is None  # batchable one still inside window


def test_jobs_without_group_are_never_batchable():
    assert not TileJob("r", ["s"], group=None, batchable=True).batchable


# --------------------------------------------------------------------- #
# requeue / lifecycle
# --------------------------------------------------------------------- #
def test_requeue_goes_to_front_and_is_immediately_ready():
    clock = FakeClock()
    s = BatchScheduler(max_batch=2, window=5.0, clock=clock)
    first, second = job(request="a"), job(request="a")
    s.put(first)
    s.put(second)
    batch = s.get(timeout=0)
    assert batch == [first, second]
    clock.now = 100.0
    s.requeue(batch)  # dying worker hands work back
    redo = s.get(timeout=0)
    assert redo == [first, second]  # order preserved, past-window => ready


def test_close_flushes_open_windows_then_returns_none():
    clock = FakeClock()
    s = BatchScheduler(max_batch=8, window=60.0, clock=clock)
    s.put(job(request="a"))
    s.close()
    assert s.closed
    assert len(s.get()) == 1  # drains without waiting out the window
    assert s.get() is None    # closed and empty
    assert s.get() is None    # stays terminal


def test_drain_removes_everything():
    s = BatchScheduler(max_batch=8, window=60.0)
    jobs = [job(request=f"r{i}") for i in range(3)]
    jobs.append(job(request="e", group=None, batchable=False))
    for j in jobs:
        s.put(j)
    assert s.depth() == 4
    drained = s.drain()
    assert sorted(map(id, drained)) == sorted(map(id, jobs))
    assert s.depth() == 0


def test_get_timeout_returns_none_when_idle():
    s = BatchScheduler(max_batch=8, window=0.0)
    assert s.get(timeout=0.01) is None
    assert not s.closed


def test_put_wakes_blocked_consumer():
    s = BatchScheduler(max_batch=8, window=0.0)
    out = []
    t = threading.Thread(target=lambda: out.append(s.get()))
    t.start()
    j = job()
    s.put(j)
    t.join(timeout=5.0)
    assert out and out[0] == [j]


def test_constructor_validation():
    with pytest.raises(ValueError):
        BatchScheduler(max_batch=0)
    with pytest.raises(ValueError):
        BatchScheduler(window=-1.0)
