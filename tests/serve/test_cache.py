"""LRU output-cache tests: hit/miss accounting, eviction, isolation."""

import threading

import numpy as np
import pytest

from repro.serve import LRUCache, array_digest


class TestArrayDigest:
    def test_digest_depends_on_content_shape_dtype(self):
        a = np.arange(6, dtype=np.float32)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        assert array_digest(a) != array_digest(a.astype(np.float64))
        b = a.copy()
        b[0] += 1
        assert array_digest(a) != array_digest(b)

    def test_digest_of_noncontiguous_view(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert array_digest(a[:, ::2]) == array_digest(a[:, ::2].copy())


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", np.ones(3))
        assert np.array_equal(cache.get("a"), np.ones(3))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", np.full(1, 2.0))
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("a", np.ones(1))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_returned_arrays_are_isolated(self):
        cache = LRUCache(capacity=2)
        original = np.ones(3)
        cache.put("a", original)
        original[:] = 7.0  # caller mutates its array after storing
        got = cache.get("a")
        assert np.array_equal(got, np.ones(3))
        got[:] = 9.0  # and after retrieving
        assert np.array_equal(cache.get("a"), np.ones(3))

    def test_concurrent_access_smoke(self):
        cache = LRUCache(capacity=8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            for i in range(200):
                key = int(rng.integers(0, 16))
                if rng.random() < 0.5:
                    cache.put(key, np.full(2, key, dtype=np.float32))
                else:
                    got = cache.get(key)
                    if got is not None:
                        assert np.all(got == key)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8
