"""Telemetry tests: counters, gauges, histogram percentiles, snapshot."""

import json
import threading

import pytest

from repro.serve import Counter, Gauge, Histogram, Telemetry


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter()

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3)
        g.inc(2)
        g.dec()
        assert g.value == 4.0


class TestHistogram:
    def test_exact_percentiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0
        assert h.mean == pytest.approx(50.5)

    def test_empty_histogram_is_quiet(self):
        h = Histogram()
        assert h.percentile(95) == 0.0
        assert h.summary()["count"] == 0

    def test_reservoir_caps_memory_but_not_count(self):
        h = Histogram(capacity=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert h.sum == pytest.approx(sum(range(1000)))
        assert h.summary()["max"] == 999.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestTelemetry:
    def test_named_metrics_are_singletons(self):
        t = Telemetry()
        assert t.counter("x") is t.counter("x")
        assert t.gauge("y") is t.gauge("y")
        assert t.histogram("z") is t.histogram("z")

    def test_snapshot_is_json_serialisable(self):
        t = Telemetry()
        t.counter("requests").inc(3)
        t.gauge("depth").set(2)
        t.histogram("latency").observe(12.5)
        snap = json.loads(json.dumps(t.snapshot()))
        assert snap["counters"]["requests"] == 3
        assert snap["gauges"]["depth"] == 2
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["histograms"]["latency"]["p50"] == 12.5
