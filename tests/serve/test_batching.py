"""Cross-request dynamic batching: coalescing, bit-identity, isolation.

The contract under test (ISSUE: the tentpole): with ``batch_window_ms >
0`` concurrent requests coalesce into shared forward passes, and the
served bytes are **bit-identical** to the unbatched engine — batching is
purely a throughput knob, never an accuracy knob.  A poisoned batch
fails only the faulty request; its batchmates re-run singly and succeed.
"""

import threading
import urllib.request

import numpy as np
import pytest

from repro.datasets import decode_netpbm, encode_netpbm
from repro.obs.profiler import profile
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)

KEY = ModelKey("M3", 2)


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


def _images(n, shape, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(shape).astype(np.float32) for _ in range(n)]


def _concurrent_upscale(engine, images):
    """Fire all requests at once (barrier) so windows actually coalesce."""
    out = [None] * len(images)
    errors = []
    barrier = threading.Barrier(len(images))

    def run(i):
        barrier.wait()
        try:
            out[i] = engine.upscale(images[i])
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(len(images))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    return out


BATCHED = EngineConfig(
    workers=2, tile=32, cache_size=0, supervise=False,
    batch_window_ms=25.0, max_batch=8,
)


class TestCoalescing:
    def test_concurrent_requests_coalesce_bit_identically(self, registry):
        images = _images(16, (24, 24))  # one tile each => one batch group
        ref_engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            reference = [ref_engine.upscale(img) for img in images]
        finally:
            ref_engine.shutdown()
        engine = InferenceEngine(registry, KEY, config=BATCHED)
        try:
            results = _concurrent_upscale(engine, images)
            stats = engine.stats()
        finally:
            engine.shutdown()
        for got, want in zip(results, reference):
            assert np.array_equal(got, want)  # bitwise, not allclose
        b = stats["batching"]
        assert b["coalesced_batches"] >= 1, b
        assert b["coalesced_tiles"] >= 2
        assert 0.0 < b["coalesce_ratio"] <= 1.0
        assert stats["histograms"]["engine.batch_size"]["max"] >= 2

    def test_mixed_shapes_never_share_a_batch(self, registry):
        # Different tile shapes => different groups; outputs must not
        # bleed across requests of either shape.
        small = _images(6, (16, 16), seed=1)
        large = _images(6, (24, 24), seed=2)
        ref_engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            want = [ref_engine.upscale(i) for i in small + large]
        finally:
            ref_engine.shutdown()
        engine = InferenceEngine(registry, KEY, config=BATCHED)
        try:
            got = _concurrent_upscale(engine, small + large)
        finally:
            engine.shutdown()
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_multi_tile_requests_coalesce_across_requests(self, registry):
        # 40x40 at tile 32 => 4 tiles each, 3 distinct halo shapes; the
        # same-shape tiles of different requests still stack exactly.
        images = _images(6, (40, 40), seed=3)
        ref_engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            want = [ref_engine.upscale(i) for i in images]
        finally:
            ref_engine.shutdown()
        engine = InferenceEngine(registry, KEY, config=BATCHED)
        try:
            got = _concurrent_upscale(engine, images)
            coalesced = engine.stats()["batching"]["coalesced_batches"]
        finally:
            engine.shutdown()
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        assert coalesced >= 1

    def test_window_zero_never_coalesces(self, registry):
        engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            _concurrent_upscale(engine, _images(8, (24, 24)))
            b = engine.stats()["batching"]
        finally:
            engine.shutdown()
        assert b["coalesced_batches"] == 0
        assert b["mean_batch_size"] == 1.0


class TestBlockedBackend:
    """Tentpole: ``gemm_backend="blocked"`` turns a coalesced batch into
    ONE stacked GEMM per conv — and stays bit-identical to window-0
    single-sample serving on the same backend."""

    def test_coalesced_blocked_matches_window_zero_singles(self, registry):
        images = _images(12, (24, 24), seed=7)
        blocked = BATCHED.replace(gemm_backend="blocked")
        ref_engine = InferenceEngine(
            registry, KEY, config=blocked.replace(batch_window_ms=0.0)
        )
        try:
            want = [ref_engine.upscale(img) for img in images]
        finally:
            ref_engine.shutdown()

        engine = InferenceEngine(registry, KEY, config=blocked)
        try:
            # Calibrate GEMMs-per-forward-pass on the engine's own model.
            with profile() as cal:
                engine.model.run(
                    np.zeros((1, 8, 8, 1), dtype=np.float32)
                )
            n_convs = cal.stats()["gemm.blocked"].calls
            with profile() as prof:
                got = _concurrent_upscale(engine, images)
            stats = engine.stats()
        finally:
            engine.shutdown()

        for g, w in zip(got, want):
            assert np.array_equal(g, w)  # bitwise, not allclose
        assert stats["batching"]["coalesced_batches"] >= 1
        assert stats["batching"]["batch_fallbacks"] == 0
        # One stacked GEMM per conv per dispatch — never per sample: the
        # GEMM count scales with forward passes, not with requests.
        ops = prof.stats()
        assert "gemm.blas" not in ops
        dispatches = stats["counters"]["engine.batches"]
        assert dispatches < len(images)  # coalescing really merged work
        assert ops["gemm.blocked"].calls == n_convs * dispatches

    def test_stats_expose_the_kernel_plan(self, registry):
        engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(gemm_backend="blocked")
        )
        try:
            kernels = engine.stats()["kernels"]
        finally:
            engine.shutdown()
        assert kernels["backend"] == "blocked"
        assert kernels["choices"]  # one row per conv node
        for choice in kernels["choices"]:
            assert choice["kernel"] == "blocked"
            assert choice["source"] == "forced"
            assert set(choice) == {"node", "shape", "kernel", "source"}


class _FailBatchOnce:
    """FaultInjector stand-in: poisons exactly the first injected call."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def on_tile(self):
        with self._lock:
            self.calls += 1
            if self.calls == 1:
                raise RuntimeError("injected: poisoned batch")

    def stats(self):
        return {"calls": self.calls}


class TestPoisonedBatch:
    def test_poisoned_batch_falls_back_to_singles(self, registry):
        inj = _FailBatchOnce()
        engine = InferenceEngine(
            registry, KEY,
            config=BATCHED.replace(batch_window_ms=50.0),
            fault_injector=inj,
        )
        try:
            images = _images(8, (24, 24), seed=4)
            results = _concurrent_upscale(engine, images)  # none may fail
            stats = engine.stats()
        finally:
            engine.shutdown()
        ref_engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            for got, img in zip(results, images):
                assert np.array_equal(got, ref_engine.upscale(img))
        finally:
            ref_engine.shutdown()
        b = stats["batching"]
        assert b["batch_fallbacks"] >= 1  # the poisoned batch was isolated
        assert stats["counters"]["engine.requests_ok"] == len(images)


class TestHTTPStress:
    """Satellite 5: N clients on ``/v1/upscale``, byte parity, no bleed."""

    def test_concurrent_v1_clients_get_exact_bytes(self, registry):
        shapes = [(16, 16), (24, 24), (16, 16), (24, 24)]
        payloads = [
            encode_netpbm(img) for i, shape in enumerate(shapes)
            for img in _images(3, shape, seed=10 + i)
        ]
        # The reference pipeline mirrors the server exactly: the engine
        # sees the 8-bit decode of the wire payload, not the raw floats.
        ref_engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=0.0)
        )
        try:
            want = [encode_netpbm(ref_engine.upscale(decode_netpbm(p)))
                    for p in payloads]
        finally:
            ref_engine.shutdown()

        engine = InferenceEngine(
            registry, KEY, config=BATCHED.replace(batch_window_ms=10.0)
        )
        srv = make_server(engine, "127.0.0.1", 0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        try:
            got = [None] * len(payloads)
            errors = []
            barrier = threading.Barrier(len(payloads))

            def client(i):
                req = urllib.request.Request(
                    f"http://{host}:{port}/v1/upscale",
                    data=payloads[i], method="POST",
                )
                barrier.wait()
                with urllib.request.urlopen(req, timeout=60) as resp:
                    got[i] = resp.read()

            def run(i):
                try:
                    client(i)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(payloads))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
        finally:
            srv.close()
            thread.join(timeout=5)
        # Byte-identical responses, each to its own request: exactness
        # plus no cross-request pixel bleed in one assertion.
        for g, w in zip(got, want):
            assert g == w
