"""Serving parity: compiled plans must be invisible to HTTP clients.

``POST /v1/upscale`` bytes are pinned identical with and without the plan
cache, in both precisions, and the degraded (bicubic) fallback is shown to
bypass the compiled executor entirely.
"""

import threading
import urllib.request

import numpy as np
import pytest

from repro.compile import CompiledModel
from repro.datasets import encode_netpbm
from repro.resilience import CircuitBreaker
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)


def _serve(engine):
    srv = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def _post(srv, body):
    host, port = srv.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}/v1/upscale", data=body, method="POST"
    )
    return urllib.request.urlopen(req, timeout=30)


@pytest.fixture(scope="module", params=["fp32", "int8"])
def server_pair(request):
    registry = ModelRegistry()
    key = ModelKey(name="M3", scale=2, precision=request.param)
    engines = [
        InferenceEngine(registry, key, config=EngineConfig(
            workers=2, tile=16, cache_size=0, compiled=compiled))
        for compiled in (True, False)
    ]
    pairs = [_serve(e) for e in engines]
    yield [srv for srv, _ in pairs]
    for (srv, thread), engine in zip(pairs, engines):
        srv.close()
        thread.join(timeout=5)
        engine.shutdown()


class TestCompiledHTTPParity:
    def test_upscale_bytes_identical_compiled_vs_eager(self, server_pair):
        compiled_srv, eager_srv = server_pair
        rng = np.random.default_rng(0)
        body = encode_netpbm(rng.random((24, 20)).astype(np.float32))
        with _post(compiled_srv, body) as r1:
            compiled_bytes = r1.read()
            assert r1.headers["X-Degraded"] == "false"
        with _post(eager_srv, body) as r2:
            eager_bytes = r2.read()
        assert compiled_bytes == eager_bytes


class TestDegradedBypassesThePlan:
    def test_degraded_fallback_never_executes_the_compiled_model(self):
        registry = ModelRegistry()
        engine = InferenceEngine(
            registry, ModelKey(name="M3", scale=2),
            config=EngineConfig(workers=2, tile=16, cache_size=0,
                                degraded_mode=True),
            breaker=CircuitBreaker(failure_threshold=1, cooldown=60.0),
        )
        srv, thread = _serve(engine)
        try:
            assert isinstance(engine.model, CompiledModel)
            engine.breaker.record_failure()  # threshold 1: breaker opens
            rng = np.random.default_rng(1)
            body = encode_netpbm(rng.random((16, 16)).astype(np.float32))
            with _post(srv, body) as resp:
                assert resp.headers["X-Degraded"] == "true"
                assert len(resp.read()) > 0  # bicubic fallback delivered
            assert engine.model.runs == 0  # the plan never executed
        finally:
            srv.close()
            thread.join(timeout=5)
            engine.shutdown()
