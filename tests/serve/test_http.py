"""End-to-end HTTP tests against an ephemeral in-process server."""

import json
import os
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.datasets import decode_netpbm, encode_netpbm, save_image
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry()
    engine = InferenceEngine(
        registry, ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=8),
    )
    srv = make_server(engine, "127.0.0.1", 0)  # ephemeral port
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


def url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def post(server, path, body):
    req = urllib.request.Request(url(server, path), data=body, method="POST")
    return urllib.request.urlopen(req, timeout=30)


def get_json(server, path):
    with urllib.request.urlopen(url(server, path), timeout=30) as resp:
        return json.load(resp)


class TestHealthAndStats:
    def test_healthz(self, server):
        body = get_json(server, "/v1/healthz")
        assert body["status"] == "ok"
        assert body["model"] == "M3" and body["scale"] == 2

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server, "/nope")
        assert err.value.code == 404


class TestUpscale:
    def test_grey_round_trip(self, server):
        rng = np.random.default_rng(0)
        img = rng.random((24, 20)).astype(np.float32)
        with post(server, "/v1/upscale", encode_netpbm(img)) as resp:
            out = decode_netpbm(resp.read())
        assert out.shape == (48, 40)

    def test_identical_inputs_hit_the_cache(self, server):
        rng = np.random.default_rng(1)
        body = encode_netpbm(rng.random((16, 16)).astype(np.float32))
        with post(server, "/v1/upscale", body) as r1:
            first = r1.read()
        with post(server, "/v1/upscale", body) as r2:
            second = r2.read()
        assert first == second
        assert server.engine.cache.stats()["hits"] >= 1

    def test_colour_round_trip(self, server):
        rng = np.random.default_rng(2)
        img = rng.random((16, 12, 3)).astype(np.float32)
        with post(server, "/v1/upscale", encode_netpbm(img)) as resp:
            out = decode_netpbm(resp.read())
        assert out.shape == (32, 24, 3)

    def test_bad_payload_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"definitely not an image")
        assert err.value.code == 400

    def test_empty_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", b"")
        assert err.value.code == 400

    def test_post_to_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/elsewhere", b"x")
        assert err.value.code == 404

    def test_stats_report_served_traffic(self, server):
        stats = get_json(server, "/v1/stats")
        counters = stats["counters"]
        assert counters["engine.requests_total"] > 0
        assert counters["engine.requests_ok"] > 0
        latency = stats["histograms"]["engine.request_latency_ms"]
        assert latency["count"] > 0
        assert latency["p50"] > 0 and latency["p95"] >= latency["p50"]
        assert stats["cache"]["hits"] >= 1
        assert stats["config"]["workers"] == 2


@pytest.fixture(scope="module")
def parity_server():
    """Server at CLI-default tile size: requests below 96x96 LR are a
    single tile, so the engine runs the exact cmd_upscale predict path."""
    registry = ModelRegistry()
    engine = InferenceEngine(
        registry, ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, cache_size=8),
    )
    srv = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


class TestCliParity:
    def test_http_output_bit_identical_to_cmd_upscale(self, parity_server,
                                                      tmp_path):
        """The acceptance check: served bytes == CLI-written file bytes."""
        server = parity_server
        rng = np.random.default_rng(3)

        grey_in = os.path.join(tmp_path, "in.pgm")
        grey_out = os.path.join(tmp_path, "out.pgm")
        save_image(grey_in, rng.random((25, 19)).astype(np.float32))
        assert cli_main(["upscale", "--model", "M3", "--scale", "2",
                         "--input", grey_in, "--output", grey_out]) == 0
        with open(grey_in, "rb") as fh:
            body = fh.read()
        with post(server, "/v1/upscale", body) as resp:
            served = resp.read()
        with open(grey_out, "rb") as fh:
            assert served == fh.read()

    def test_http_colour_bit_identical_to_cmd_upscale(self, parity_server,
                                                      tmp_path):
        server = parity_server
        rng = np.random.default_rng(4)
        col_in = os.path.join(tmp_path, "in.ppm")
        col_out = os.path.join(tmp_path, "out.ppm")
        save_image(col_in, rng.random((14, 18, 3)).astype(np.float32))
        assert cli_main(["upscale", "--model", "M3", "--scale", "2",
                         "--input", col_in, "--output", col_out]) == 0
        with open(col_in, "rb") as fh:
            body = fh.read()
        with post(server, "/v1/upscale", body) as resp:
            served = resp.read()
        with open(col_out, "rb") as fh:
            assert served == fh.read()
