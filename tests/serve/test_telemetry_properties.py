"""Property/fuzz tests for the telemetry primitives.

The histogram's exact count/sum/min/max plus reservoir percentiles are
what ``/stats``, ``/metrics``, and the throughput benchmark report —
these tests pin their invariants against a sorted-sample oracle and
under concurrency, rather than against hand-picked examples.
"""

import math
import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.telemetry import Gauge, Histogram, Telemetry

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_percentiles_match_sorted_sample_oracle(values):
    """Below capacity the reservoir is exact: nearest-rank over all values."""
    h = Histogram(capacity=256)
    for v in values:
        h.observe(v)
    ordered = sorted(values)
    for p in (0, 25, 50, 90, 95, 99, 100):
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        assert h.percentile(p) == ordered[rank]


@given(st.lists(finite_floats, min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_summary_invariants(values):
    h = Histogram(capacity=64)  # small: most runs overflow the reservoir
    for v in values:
        h.observe(v)
    s = h.summary()
    assert s["count"] == len(values)
    assert s["min"] == min(values)
    assert s["max"] == max(values)
    np.testing.assert_allclose(s["mean"], np.mean(values), rtol=1e-9)
    # Percentiles come from retained samples, all of which were observed,
    # so they are bounded by the exact extrema and ordered.
    assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]


@given(st.integers(min_value=65, max_value=500))
@settings(max_examples=30, deadline=None)
def test_exact_stats_past_capacity(n):
    """count/sum/min/max never degrade, however far past capacity we go."""
    h = Histogram(capacity=64)
    for i in range(n):
        h.observe(float(i))
    assert h.count == n
    assert h.sum == sum(range(n))
    assert h.summary()["min"] == 0.0
    assert h.summary()["max"] == float(n - 1)


def test_percentile_rejects_out_of_range():
    h = Histogram()
    h.observe(1.0)
    for bad in (-0.1, 100.1):
        try:
            h.percentile(bad)
        except ValueError:
            continue
        raise AssertionError(f"percentile({bad}) should raise")


def test_empty_histogram_summary_is_zeroed():
    s = Histogram().summary()
    assert s == {
        "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_concurrent_observe_exact_totals():
    """8 writer threads: count and sum stay exact, extrema correct."""
    h = Histogram(capacity=128)
    per_thread = 2000

    def writer(base):
        # Integer-valued floats sum exactly in float64 at this magnitude.
        for i in range(per_thread):
            h.observe(float(base + i))

    threads = [
        threading.Thread(target=writer, args=(t * per_thread,))
        for t in range(8)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()

    n = 8 * per_thread
    assert h.count == n
    assert h.sum == sum(range(n))
    s = h.summary()
    assert s["min"] == 0.0
    assert s["max"] == float(n - 1)
    assert s["min"] <= s["p50"] <= s["p99"] <= s["max"]


def test_summary_never_torn_under_concurrent_writes():
    """Readers snapshotting mid-write see internally consistent summaries."""
    h = Histogram(capacity=64)
    stop = threading.Event()
    bad = []

    def writer():
        i = 0
        while not stop.is_set():
            h.observe(float(i % 1000))
            i += 1

    def reader():
        while not stop.is_set():
            s = h.summary()
            if s["count"] == 0:
                continue
            if not (s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]):
                bad.append(("order", s))
            if not (s["min"] <= s["mean"] <= s["max"]):
                bad.append(("mean", s))

    writers = [threading.Thread(target=writer) for _ in range(4)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for th in writers + readers:
        th.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for th in writers + readers:
        th.join()
    timer.cancel()
    assert not bad, bad[:3]


@given(st.lists(finite_floats, min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_gauge_dec_can_go_negative(deltas):
    g = Gauge()
    expected = 0.0
    for d in deltas:
        g.dec(d)
        expected -= d
    np.testing.assert_allclose(g.value, expected, atol=1e-6)
    g2 = Gauge()
    g2.dec()
    assert g2.value == -1.0


def test_telemetry_snapshot_consistent_under_load():
    """Counters are monotone across snapshots taken mid-flight."""
    tel = Telemetry()
    stop = threading.Event()

    def worker():
        c = tel.counter("requests")
        h = tel.histogram("latency_ms", capacity=64)
        g = tel.gauge("inflight")
        i = 0
        while not stop.is_set():
            g.inc()
            c.inc()
            h.observe(float(i % 100))
            g.dec()
            i += 1

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for th in threads:
        th.start()
    last = -1
    problems = []
    for _ in range(200):
        snap = tel.snapshot()
        count = snap["counters"].get("requests", 0)
        if count < last:
            problems.append(("non-monotone counter", last, count))
        last = count
        hist = snap["histograms"].get("latency_ms")
        if hist and hist["count"]:
            if not hist["min"] <= hist["p50"] <= hist["max"]:
                problems.append(("torn histogram", hist))
            if hist["mean"] > hist["max"] or hist["mean"] < hist["min"]:
                problems.append(("impossible mean", hist))
    stop.set()
    for th in threads:
        th.join()
    assert not problems, problems[:3]
    final = tel.snapshot()
    assert final["counters"]["requests"] == final["histograms"][
        "latency_ms"]["count"]


def test_engine_stats_consistent_mid_flight():
    """Snapshots taken while the engine serves real requests are sane."""
    from repro.serve import (
        EngineConfig,
        InferenceEngine,
        ModelKey,
        ModelRegistry,
    )

    registry = ModelRegistry(seed=0)
    engine = InferenceEngine(
        registry, ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=0),
    )
    try:
        rng = np.random.default_rng(0)
        images = [rng.random((24, 24)) for _ in range(6)]
        errors = []

        def client(img):
            try:
                engine.upscale(img)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(img,)) for img in images
        ]
        for th in threads:
            th.start()
        problems = []
        last_requests = -1
        while any(th.is_alive() for th in threads):
            snap = engine.stats()
            counters = snap["counters"]
            requests = counters.get("engine.requests_total", 0)
            if requests < last_requests:
                problems.append(("non-monotone", last_requests, requests))
            last_requests = requests
            for hist in snap["histograms"].values():
                if hist["count"] and not (
                    hist["min"] <= hist["p50"] <= hist["max"]
                ):
                    problems.append(("torn", hist))
        for th in threads:
            th.join()
        assert not errors
        assert not problems, problems[:3]
        final = engine.stats()["counters"]
        assert final["engine.requests_total"] == len(images)
    finally:
        engine.shutdown()
