"""End-to-end tests for ``GET /metrics`` and ``X-Trace-Id`` round-tripping.

The Prometheus exposition is validated with a hand-rolled parser of the
text format (version 0.0.4) — no client library — and cross-checked
against the JSON ``/stats`` endpoint so the two views of the registry
can never drift apart silently.
"""

import json
import re
import threading
import urllib.request

import numpy as np
import pytest

from repro.datasets import encode_netpbm
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Parse exposition text; returns (samples, types).

    ``samples`` maps ``(metric, frozenset(labels.items()))`` to the float
    value; ``types`` maps metric name to its declared type.  Raises
    ``AssertionError`` on any malformed line, so using this parser *is*
    the format validation.
    """
    samples = {}
    types = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        assert line, "blank lines are not emitted"
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split(" ", 3)
            assert mtype in ("counter", "gauge", "summary", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = mtype
            continue
        if line.startswith("# HELP "):
            assert line.split(" ", 3)[3], "HELP must carry text"
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed sample line: {line!r}"
        labels = {}
        if m.group("labels"):
            consumed = _LABEL_RE.findall(m.group("labels"))
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            assert rebuilt == m.group("labels"), \
                f"malformed labels: {m.group('labels')!r}"
            labels = dict(consumed)
        raw = m.group("value")
        value = float("nan") if raw == "NaN" else float(raw)
        key = (m.group("name"), frozenset(labels.items()))
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = value
    return samples, types


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry()
    engine = InferenceEngine(
        registry, ModelKey(name="M3", scale=2),
        config=EngineConfig(workers=2, tile=16, cache_size=8),
    )
    srv = make_server(engine, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


def url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def post_image(server, img, headers=None):
    req = urllib.request.Request(
        url(server, "/v1/upscale"), data=encode_netpbm(img), method="POST",
        headers=headers or {},
    )
    return urllib.request.urlopen(req, timeout=30)


def scrape(server):
    with urllib.request.urlopen(url(server, "/v1/metrics"), timeout=30) as resp:
        assert resp.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in resp.headers["Content-Type"]
        return resp.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_parses_as_valid_prometheus_text(self, server):
        with post_image(server, np.random.default_rng(0).random((20, 20))):
            pass
        samples, types = parse_prometheus(scrape(server))
        assert samples and types
        # Every sample belongs to a declared metric family (summaries
        # emit _sum/_count under the family's TYPE header).
        for name, _ in samples:
            family = re.sub(r"_(sum|count)$", "", name)
            assert name in types or family in types, name
        # Counters carry the _total convention and never go negative.
        for name, mtype in types.items():
            if mtype == "counter":
                assert name.endswith("_total"), name
        for (name, _), value in samples.items():
            if types.get(name) == "counter":
                assert value >= 0

    def test_agrees_with_stats_json(self, server):
        with post_image(server, np.random.default_rng(1).random((18, 18))):
            pass
        # Quiesced server: both endpoints must describe the same registry
        # state (scrape after /stats sees >= its counters; here nothing
        # is in flight so they are equal).
        with urllib.request.urlopen(url(server, "/v1/stats"), timeout=30) as r:
            stats = json.load(r)
        samples, _ = parse_prometheus(scrape(server))
        no_labels = frozenset()
        for name, value in stats["counters"].items():
            metric = "repro_" + name.replace(".", "_")
            if not metric.endswith("_total"):
                metric += "_total"
            assert samples[(metric, no_labels)] == value, name
        for name, value in stats["gauges"].items():
            metric = "repro_" + name.replace(".", "_")
            assert samples[(metric, no_labels)] == pytest.approx(value), name
        for name, summary in stats["histograms"].items():
            metric = "repro_" + name.replace(".", "_")
            assert samples[(f"{metric}_count", no_labels)] == summary["count"]
        for name, state in stats["states"].items():
            metric = "repro_" + name.replace(".", "_")
            key = (metric, frozenset([("state", state or "unknown")]))
            assert samples[key] == 1, name

    def test_trace_span_aggregates_present(self, server):
        with post_image(server, np.random.default_rng(2).random((22, 22))):
            pass
        samples, types = parse_prometheus(scrape(server))
        assert types.get("repro_trace_spans_total") == "counter"
        request_key = (
            "repro_trace_spans_total",
            frozenset([("name", "serve.request")]),
        )
        tile_key = (
            "repro_trace_spans_total",
            frozenset([("name", "serve.tile")]),
        )
        assert samples[request_key] >= 1
        assert samples[tile_key] >= 1

    def test_scrape_is_monotone_in_requests(self, server):
        def requests_total():
            samples, _ = parse_prometheus(scrape(server))
            return samples[("repro_engine_requests_total", frozenset())]

        before = requests_total()
        with post_image(server, np.random.default_rng(3).random((16, 24))):
            pass
        after = requests_total()
        assert after == before + 1


class TestTraceIdHeader:
    def test_server_issues_fresh_trace_id(self, server):
        with post_image(server, np.random.default_rng(4).random((16, 16))) \
                as resp:
            tid = resp.headers["X-Trace-Id"]
        assert re.fullmatch(r"[0-9a-f]{16}", tid)

    def test_client_trace_id_round_trips(self, server):
        sent = "abcdef0123456789"
        img = np.random.default_rng(5).random((16, 16))
        with post_image(server, img, {"X-Trace-Id": sent}) as resp:
            assert resp.headers["X-Trace-Id"] == sent

    def test_client_trace_id_case_insensitive(self, server):
        img = np.random.default_rng(6).random((16, 16))
        with post_image(server, img, {"X-Trace-Id": "ABCDEF0123456789"}) \
                as resp:
            assert resp.headers["X-Trace-Id"] == "abcdef0123456789"

    def test_malformed_trace_id_replaced(self, server):
        img = np.random.default_rng(7).random((16, 16))
        for bad in ("short", "zzzzzzzzzzzzzzzz", "0" * 32):
            with post_image(server, img, {"X-Trace-Id": bad}) as resp:
                issued = resp.headers["X-Trace-Id"]
                assert issued != bad
                assert re.fullmatch(r"[0-9a-f]{16}", issued)

    def test_distinct_requests_distinct_traces(self, server):
        rng = np.random.default_rng(8)
        with post_image(server, rng.random((16, 16))) as r1:
            t1 = r1.headers["X-Trace-Id"]
        with post_image(server, rng.random((16, 16))) as r2:
            t2 = r2.headers["X-Trace-Id"]
        assert t1 != t2
