"""``repro.api`` facade: the stable surface does what the subsystems do."""

import numpy as np
import pytest

from repro import api
from repro.core import SESR
from repro.datasets import rgb_to_ycbcr, ycbcr_to_rgb
from repro.datasets.degradation import bicubic_upscale
from repro.deploy import tiled_upscale
from repro.train import predict_image


def test_all_names_resolve():
    expected = {
        "load", "collapse", "compile_model", "tune", "upscale",
        "AsyncSRServer", "EngineConfig", "InferenceEngine", "ModelKey",
        "ModelRegistry", "ProcessWorkerPool", "make_async_server",
        "make_server",
    }
    assert set(api.__all__) == expected
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_api_is_importable_from_the_package_root():
    import repro

    assert repro.api is api


def test_load_builds_named_models():
    assert isinstance(api.load("M3", scale=2), SESR)
    assert api.load("FSRCNN", scale=2).scale == 2
    with pytest.raises(KeyError):
        api.load("M99")


def test_load_round_trips_a_checkpoint(tmp_path):
    from repro.nn import save_state

    model = api.load("M3", scale=2, seed=7)
    path = str(tmp_path / "m3.npz")
    save_state(model, path)
    again = api.load("M3", scale=2, ckpt=path)
    x = np.random.default_rng(0).random((8, 8)).astype(np.float32)
    assert np.array_equal(predict_image(model, x), predict_image(again, x))


def test_collapse_matches_model_collapse():
    model = api.load("M3", scale=2)
    x = np.random.default_rng(1).random((10, 10)).astype(np.float32)
    want = predict_image(model.collapse(), x)
    assert np.array_equal(predict_image(api.collapse(model), x), want)


def test_upscale_grey_matches_predict_image():
    model = api.collapse(api.load("M3", scale=2))
    x = np.random.default_rng(2).random((12, 12)).astype(np.float32)
    assert np.array_equal(api.upscale(model, x), predict_image(model, x))


def test_upscale_tiled_matches_tiled_upscale():
    model = api.collapse(api.load("M3", scale=2))
    x = np.random.default_rng(3).random((20, 20)).astype(np.float32)
    want = tiled_upscale(model, x, 2, tile=(8, 8))
    assert np.array_equal(api.upscale(model, x, tile=8), want)


def test_upscale_colour_follows_the_paper_protocol():
    model = api.collapse(api.load("M3", scale=2))
    rgb = np.random.default_rng(4).random((10, 10, 3)).astype(np.float32)
    ycbcr = rgb_to_ycbcr(rgb)
    want = ycbcr_to_rgb(np.stack([
        predict_image(model, np.ascontiguousarray(ycbcr[..., 0])),
        bicubic_upscale(ycbcr[..., 1], 2),
        bicubic_upscale(ycbcr[..., 2], 2),
    ], axis=2))
    assert np.array_equal(api.upscale(model, rgb), want)


def test_upscale_compiled_model_infers_scale():
    compiled = api.compile_model(api.collapse(api.load("M3", scale=2)))
    x = np.random.default_rng(5).random((9, 9)).astype(np.float32)
    assert api.upscale(compiled, x).shape == (18, 18)


def test_upscale_rejects_bad_shapes():
    model = api.collapse(api.load("M3", scale=2))
    with pytest.raises(ValueError, match="grey"):
        api.upscale(model, np.zeros((4, 4, 2), dtype=np.float32))
    with pytest.raises(ValueError, match="scale"):
        api.upscale(object(), np.zeros((4, 4), dtype=np.float32))


def test_tune_measures_and_persists(tmp_path, monkeypatch):
    from repro.kernels import GEMM_KERNELS, load_cache

    cache = str(tmp_path / "tuning.json")
    monkeypatch.setenv("REPRO_TUNING_CACHE", cache)
    rows = api.tune(api.load("M3", scale=2), size=(16, 16), repeats=1)
    assert rows
    for row in rows.values():
        assert row["kernel"] in GEMM_KERNELS
    assert load_cache(cache) == rows


def test_tune_accepts_a_compiled_model_and_can_skip_saving(
        tmp_path, monkeypatch):
    monkeypatch.setenv(
        "REPRO_TUNING_CACHE", str(tmp_path / "tuning.json")
    )
    compiled = api.compile_model(api.collapse(api.load("M3", scale=2)))
    rows = api.tune(compiled, size=(16, 16), repeats=1, save=False)
    assert rows
    assert not (tmp_path / "tuning.json").exists()
