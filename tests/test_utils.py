"""Utility-module tests."""

import time

import pytest

from repro.utils import format_si, format_table, timed


class TestFormatSI:
    def test_scales(self):
        assert format_si(6.3e9) == "6.30G"
        assert format_si(13520) == "13.52K"
        assert format_si(2e12) == "2.00T"
        assert format_si(1.5e6) == "1.50M"
        assert format_si(42.0) == "42.00"

    def test_none(self):
        assert format_si(None) == "-"

    def test_unit_and_digits(self):
        assert format_si(6.0e9, unit="MAC", digits=1) == "6.0GMAC"


class TestFormatTable:
    def test_alignment_and_none(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["longer", None]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "-" in lines[4]  # None rendered as dash
        # Columns align: all rows same length.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/sep/rows may differ by trailing pad

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestTimed:
    def test_measures_elapsed(self):
        with timed("x") as t:
            time.sleep(0.01)
        assert t["seconds"] >= 0.01
        assert t["label"] == "x"

    def test_survives_exception(self):
        with pytest.raises(RuntimeError):
            with timed() as t:
                raise RuntimeError("boom")
        assert t["seconds"] >= 0
