"""Figure 1(b) — theoretical FPS on a 4-TOP/s mobile NPU, 1080p→4K ×2 SISR.

The paper's Fig. 1(b) bars are best-case FPS = peak MAC rate / network MACs
(100% utilisation).  We regenerate the bar for every zoo network — scaling
each model's 720p MAC count to a 1080p input (9× the pixels) or using our
exact spec where available — and additionally report the *calibrated*
estimator's realistic FPS for the architectures we model.

Shape assertions: FSRCNN ≈ 37 theoretical FPS; the big CNNs (VDSR, BTSRN,
CARN-M, MOREMNAS-B) fall below 3 FPS; three of the five SESR models reach
~50+ FPS.
"""

import pytest

import repro.zoo as zoo
from common import emit
from repro.hw import (
    ETHOS_N78_4TOPS,
    IDEAL_4TOPS,
    estimate,
    graph_from_specs,
    theoretical_fps,
)

#: 1080p input has 9× the pixels of the 640×360 input behind the 720p MACs.
AREA_RATIO = (1920 * 1080) / (640 * 360)


def fig1b_rows():
    rows = []
    for entry in zoo.entries_for_scale(2):
        macs_720p = entry.reported_macs_g.get(2)
        if macs_720p is None:
            continue
        if entry.spec_fn is not None:
            graph = graph_from_specs(entry.name, entry.spec_fn(2), 1080, 1920)
            theo = theoretical_fps(graph, IDEAL_4TOPS)
            realistic = estimate(graph, ETHOS_N78_4TOPS).fps
        else:
            theo = IDEAL_4TOPS.peak_macs_per_sec / (macs_720p * 1e9 * AREA_RATIO)
            realistic = None
        rows.append((entry.name, macs_720p * AREA_RATIO, theo, realistic))
    return sorted(rows, key=lambda r: -r[2])


@pytest.mark.bench
def test_fig1b_npu_fps(benchmark):
    rows = benchmark.pedantic(fig1b_rows, rounds=1, iterations=1)

    emit(
        "Fig 1(b): FPS for 1080p->4K x2 SISR on a 4-TOP/s mobile NPU",
        ["Model", "MACs@1080p", "Theoretical FPS", "Calibrated-model FPS"],
        [
            [name, f"{macs:.1f}G", f"{theo:.2f}",
             "-" if real is None else f"{real:.2f}"]
            for name, macs, theo, real in rows
        ],
        "fig1b_npu_fps.txt",
    )
    by_name = {r[0]: r for r in rows}

    # FSRCNN's published best case: ~37 FPS.
    assert by_name["FSRCNN"][2] == pytest.approx(37.0, rel=0.03)

    # "Most methods achieve less than 3 FPS" — all the large CNNs do.
    for name in ("VDSR", "BTSRN", "CARN-M", "MOREMNAS-B"):
        assert by_name[name][2] < 3.0, name

    # "Three out of five SESR CNNs theoretically achieve nearly 60 FPS+."
    sesr_fps = [v[2] for k, v in by_name.items() if k.startswith("SESR")]
    assert sum(f >= 50.0 for f in sesr_fps) == 3

    # Realistic (calibrated) FPS never exceeds theoretical.
    for name, _, theo, real in rows:
        if real is not None:
            assert real <= theo * 1.001, name
