"""Table 1 — PSNR/SSIM for ×2 SISR across six benchmark suites.

Regenerates both axes of Table 1:

* **complexity columns** (parameters, MACs to 720p) — recomputed exactly
  from architecture specs and checked against the published numbers;
* **quality columns** — bicubic, FSRCNN, and the SESR family trained
  head-to-head under the scaled-down §5.1 protocol on the synthetic
  corpus, evaluated on synthetic analogues of the six suites.  The paper's
  reported values are printed alongside for reference.

Shape assertions: the paper's orderings (SESR > FSRCNN at fewer MACs,
capacity ordering within the SESR family, everything > bicubic).
"""

import pytest

import repro.zoo as zoo
from common import (
    FAST,
    SUITE_NAMES,
    SUITE_TO_ZOO,
    emit,
    mean_psnr,
    quality_row,
    train_config,
)
from repro.core import SESR, FSRCNN

#: (display name, zoo entry, factory) — the models we train for the table.
TRAINED_MODELS = [
    ("FSRCNN (our setup)", "FSRCNN (our setup)",
     lambda: FSRCNN(scale=2, seed=0)),
    ("SESR-M3", "SESR-M3", lambda: SESR.from_name("M3", scale=2, seed=0)),
    ("SESR-M5", "SESR-M5", lambda: SESR.from_name("M5", scale=2, seed=0)),
    ("SESR-M7", "SESR-M7", lambda: SESR.from_name("M7", scale=2, seed=0)),
    ("SESR-M11", "SESR-M11", lambda: SESR.from_name("M11", scale=2, seed=0)),
    ("SESR-XL", "SESR-XL", lambda: SESR.from_name("XL", scale=2, seed=0)),
]


def run_table1(cache):
    results = {"Bicubic": cache.bicubic(2)}
    for name, _, factory in TRAINED_MODELS:
        _, metrics = cache.get(name, 2, factory)
        results[name] = metrics
    return results


@pytest.mark.bench
def test_table1_x2_quality(benchmark, cache):
    results = benchmark.pedantic(run_table1, args=(cache,),
                                 rounds=1, iterations=1)

    # ------------------------------------------------------------------ #
    # complexity columns
    # ------------------------------------------------------------------ #
    comp_rows = []
    for entry in zoo.entries_for_scale(2):
        comp_rows.append([
            entry.name,
            entry.regime,
            "-" if entry.reported_params_k.get(2) is None
            else f"{entry.reported_params_k[2]:.2f}K",
            "-" if entry.computed_params(2) is None
            else f"{entry.computed_params(2) / 1e3:.2f}K",
            "-" if entry.reported_macs_g.get(2) is None
            else f"{entry.reported_macs_g[2]:.2f}G",
            "-" if entry.computed_macs_720p(2) is None
            else f"{entry.computed_macs_720p(2) / 1e9:.2f}G",
        ])
    emit(
        "Table 1 (complexity columns, x2): paper vs recomputed",
        ["Model", "Regime", "Params (paper)", "Params (ours)",
         "MACs (paper)", "MACs (ours)"],
        comp_rows,
        "table1_complexity.txt",
    )

    # ------------------------------------------------------------------ #
    # quality columns: measured + paper reference
    # ------------------------------------------------------------------ #
    qual_rows = []
    for name, metrics in results.items():
        qual_rows.append([f"{name} (measured)"] + quality_row(metrics))
        entry_name = name if name in zoo.ZOO else None
        if entry_name:
            reported = zoo.get(entry_name).reported_quality.get(2, {})
            qual_rows.append([f"{name} (paper)"] + [
                "-" if reported.get(SUITE_TO_ZOO[s], (None,))[0] is None
                else f"{reported[SUITE_TO_ZOO[s]][0]:.2f}/"
                     f"{reported[SUITE_TO_ZOO[s]][1]:.4f}"
                for s in SUITE_NAMES
            ])
    cfg = train_config(2)
    emit(
        f"Table 1 (quality, x2): PSNR/SSIM on synthetic suites "
        f"(trained {cfg.epochs} epochs on synthetic corpus)",
        ["Model"] + list(SUITE_NAMES),
        qual_rows,
        "table1_quality.txt",
    )

    # ------------------------------------------------------------------ #
    # assertions: complexity exact, quality shape
    # ------------------------------------------------------------------ #
    for entry in zoo.modelled_entries():
        if 2 not in entry.reported_quality:
            continue
        if entry.reported_params_k.get(2) is not None:
            assert entry.computed_params(2) == pytest.approx(
                entry.reported_params_k[2] * 1e3, rel=0.005
            ), entry.name
        if entry.reported_macs_g.get(2) is not None:
            assert entry.computed_macs_720p(2) == pytest.approx(
                entry.reported_macs_g[2] * 1e9, rel=0.01
            ), entry.name

    bicubic = mean_psnr(results["Bicubic"])
    m3 = mean_psnr(results["SESR-M3"])
    m5 = mean_psnr(results["SESR-M5"])
    m11 = mean_psnr(results["SESR-M11"])
    xl = mean_psnr(results["SESR-XL"])
    fsrcnn = mean_psnr(results["FSRCNN (our setup)"])

    if FAST:
        # Smoke mode trains too briefly for quality orderings; just check
        # the pipeline produced plausible images.
        assert all(mean_psnr(m) > 2 for m in results.values())  # not NaN/diverged
        return

    # SESR learns something: every SESR model beats bicubic on average.
    for name, val in [("M3", m3), ("M5", m5), ("M11", m11), ("XL", xl)]:
        assert val > bicubic, f"SESR-{name} {val:.2f} <= bicubic {bicubic:.2f}"

    # The headline: SESR-M5 beats FSRCNN with ~2× fewer MACs — and it does
    # so on every individual suite, not just on average.
    assert m5 > fsrcnn, f"SESR-M5 {m5:.2f} <= FSRCNN {fsrcnn:.2f}"
    for suite in SUITE_NAMES:
        assert (
            results["SESR-M5"][suite]["psnr"]
            > results["FSRCNN (our setup)"][suite]["psnr"]
        ), suite

    # Statistical confidence: paired over the same images across all
    # suites, SESR-M5 > FSRCNN with bootstrap probability ≳ 1.
    from repro.metrics import paired_bootstrap, per_image_scores

    m5_model = cache.get("SESR-M5", 2, None)[0]
    fsr_model = cache.get("FSRCNN (our setup)", 2, None)[0]
    m5_scores, fsr_scores = [], []
    for suite in SUITE_NAMES:
        ds = cache.suites(2)[suite]
        m5_scores.extend(per_image_scores(m5_model, ds))
        fsr_scores.extend(per_image_scores(fsr_model, ds))
    p_win = paired_bootstrap(m5_scores, fsr_scores)
    print(f"\npaired bootstrap P(SESR-M5 > FSRCNN) = {p_win:.3f} "
          f"over {len(m5_scores)} images")
    assert p_win > 0.95

    # NOTE: the paper's intra-family capacity ordering (M3 < M5 < ... < XL)
    # is a full-convergence property (480k steps); at this budget smaller
    # models converge faster, so it is reported in the table but not
    # asserted — see EXPERIMENTS.md "scale-down policy".
