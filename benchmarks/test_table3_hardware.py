"""Table 3 — hardware performance on the (simulated) Arm Ethos-N78 NPU.

Regenerates every row of Table 3 with the calibrated analytical NPU model:
MACs, DRAM use, runtime, FPS for FSRCNN ×2, SESR-M5 ×2/×4, and the tiled
variants, plus the runtime-improvement column.  The MAC column is exact
arithmetic; runtime/DRAM come from the calibrated roofline model, and the
assertions pin the paper's *shape* claims (orderings and ratio bands).
"""

import pytest

from common import emit
from repro.hw import (
    ETHOS_N78_4TOPS,
    estimate,
    estimate_tiled,
    fsrcnn_graph,
    sesr_hw_graph,
)

PAPER_ROWS = {
    # name: (macs_G, dram_MB, runtime_ms, fps)
    "FSRCNN (x2) 1080p->4K": (54.0, 564.11, 167.38, 5.97),
    "SESR-M5 (x2) 1080p->4K": (28.0, 282.03, 27.22, 36.73),
    "SESR-M5 (tiled x2) 400x300": (1.62, 6.46, 1.26, 792.38),
    "SESR-M5 (x4) 1080p->8K": (38.0, 389.86, 45.09, 22.17),
    "SESR-M5 (tiled x4) 400x300": (2.19, 9.84, 2.12, 471.69),
}


def run_table3():
    npu = ETHOS_N78_4TOPS
    g_fsr = fsrcnn_graph(2, 1080, 1920)
    g_m5_x2 = sesr_hw_graph(16, 5, 2, 1080, 1920)
    g_m5_x4 = sesr_hw_graph(16, 5, 4, 1080, 1920)

    rows = {}
    rows["FSRCNN (x2) 1080p->4K"] = estimate(g_fsr, npu)
    rows["SESR-M5 (x2) 1080p->4K"] = estimate(g_m5_x2, npu)
    rows["SESR-M5 (x4) 1080p->8K"] = estimate(g_m5_x4, npu)
    tiled_x2 = estimate_tiled(g_m5_x2, npu, 300, 400)
    tiled_x4 = estimate_tiled(g_m5_x4, npu, 300, 400)
    rows["SESR-M5 (tiled x2) 400x300"] = tiled_x2.tile
    rows["SESR-M5 (tiled x4) 400x300"] = tiled_x4.tile
    return rows, tiled_x2, tiled_x4


@pytest.mark.bench
def test_table3_hardware(benchmark, cache):
    rows, tiled_x2, tiled_x4 = benchmark.pedantic(
        run_table3, rounds=1, iterations=1
    )

    base = rows["FSRCNN (x2) 1080p->4K"].runtime_sec
    table = []
    for name, report in rows.items():
        p_macs, p_dram, p_ms, p_fps = PAPER_ROWS[name]
        table.append([
            name,
            f"{report.total_macs / 1e9:.2f}G (paper {p_macs}G)",
            f"{report.dram_mb:.1f}MB (paper {p_dram}MB)",
            f"{report.runtime_ms:.2f}ms (paper {p_ms}ms)",
            f"{report.fps:.1f} (paper {p_fps})",
            f"{base / report.runtime_sec:.2f}x",
        ])
    emit(
        "Table 3: Hardware performance on Arm Ethos-N78 (calibrated model)",
        ["Model/Resolution", "MACs", "DRAM", "Runtime", "FPS", "Improvement"],
        table,
        "table3_hardware.txt",
    )

    # --- MAC columns are exact arithmetic: match the paper to 1%. -------
    for name, report in rows.items():
        assert report.total_macs / 1e9 == pytest.approx(
            PAPER_ROWS[name][0], rel=0.01
        ), name

    # --- shape claims ----------------------------------------------------
    fsr = rows["FSRCNN (x2) 1080p->4K"]
    m5 = rows["SESR-M5 (x2) 1080p->4K"]
    m5_x4 = rows["SESR-M5 (x4) 1080p->8K"]

    # Paper: 6.15× runtime improvement, ~2× DRAM reduction.
    assert 3.5 <= fsr.runtime_sec / m5.runtime_sec <= 9.0
    assert 1.4 <= fsr.dram_bytes / m5.dram_bytes <= 2.6

    # Paper: tiling takes ×2 SISR from ~37 to ~46 FPS (≈8× over FSRCNN).
    full_frame_tiled_ms = tiled_x2.total_runtime_ms
    assert full_frame_tiled_ms < m5.runtime_ms
    assert 4.0 <= fsr.runtime_sec / (full_frame_tiled_ms / 1e3) <= 12.0

    # Paper: ×4 (1080p→8K) runs at 22 FPS — slower than ×2 but >3.7× faster
    # than FSRCNN's ×2 rate.
    assert m5_x4.runtime_sec > m5.runtime_sec
    assert fsr.runtime_sec / m5_x4.runtime_sec > 2.5

    # Every modelled runtime lands within ±50% of the published number.
    for name, report in rows.items():
        assert report.runtime_ms == pytest.approx(
            PAPER_ROWS[name][2], rel=0.5
        ), name
