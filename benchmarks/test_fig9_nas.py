"""§3.4 / Fig. 9 — NAS with even-sized and asymmetric kernels.

Runs the hardware-aware DNAS over the SESR supernet (kernel menu: 3×3,
2×2, 2×1, 1×2, 2×3, 3×2, skip; ends pick 5×5/3×3) with a latency penalty
from the calibrated NPU model, derives an architecture, and compares it to
the manually-designed SESR-M5 genotype.

Paper claims checked in shape: the NAS-guided network cuts simulated NPU
latency (paper: −15% for the 200×200→400×400 task) while staying within a
small PSNR gap of SESR-M5 after identical training.
"""

import pytest

from common import FAST, emit, train_config
from repro.datasets import PatchSampler, SyntheticDataset
from repro.hw import ETHOS_N78_4TOPS
from repro.nas import (
    DNASConfig,
    SESRSupernet,
    genotype_latency_ms,
    realize,
    search,
    sesr_m_genotype,
)
from repro.train import evaluate_model, run_experiment

LATENCY_RES = (200, 200)  # the paper's 200×200 → 400×400 task


def run_nas(cache):
    ds = SyntheticDataset("div2k", n_images=8, size=(96, 96), scale=2, seed=11)
    sampler = PatchSampler(ds, scale=2, patch_size=12, crops_per_image=8,
                           batch_size=6, seed=12)
    supernet = SESRSupernet(scale=2, f=16, slots=5, expansion=32, seed=1)
    cfg = DNASConfig(
        steps=10 if FAST else 120,
        latency_weight=0.02,
        latency_res=LATENCY_RES,
    )
    result = search(supernet, sampler, cfg, npu=ETHOS_N78_4TOPS)

    baseline = sesr_m_genotype(5, f=16, scale=2)
    lat_searched = genotype_latency_ms(result.genotype, ETHOS_N78_4TOPS,
                                       *LATENCY_RES)
    lat_baseline = genotype_latency_ms(baseline, ETHOS_N78_4TOPS, *LATENCY_RES)

    # Train the derived architecture and the manual baseline identically.
    train_cfg = train_config(2)
    suites = {"set5": cache.suites(2)["set5"],
              "div2k-val": cache.suites(2)["div2k-val"]}
    searched_model = realize(result.genotype, expansion=64, seed=0)
    run_experiment(searched_model, train_cfg)
    baseline_model = realize(baseline, expansion=64, seed=0)
    run_experiment(baseline_model, train_cfg)
    metrics_searched = {
        name: evaluate_model(searched_model, s) for name, s in suites.items()
    }
    metrics_baseline = {
        name: evaluate_model(baseline_model, s) for name, s in suites.items()
    }
    return (result, lat_searched, lat_baseline,
            metrics_searched, metrics_baseline)


@pytest.mark.bench
def test_fig9_nas(benchmark, cache):
    (result, lat_s, lat_b, m_s, m_b) = benchmark.pedantic(
        run_nas, args=(cache,), rounds=1, iterations=1
    )

    emit(
        "Fig 9 / §3.4: NAS-guided SESR vs manual SESR-M5 "
        f"(latency @ {LATENCY_RES[0]}x{LATENCY_RES[1]} -> x2)",
        ["Architecture", "Latency (ms)", "Params",
         "PSNR set5", "PSNR div2k-val"],
        [
            [
                f"NAS: {result.genotype.describe()}",
                f"{lat_s:.3f}",
                f"{result.genotype.num_parameters() / 1e3:.2f}K",
                f"{m_s['set5']['psnr']:.2f}",
                f"{m_s['div2k-val']['psnr']:.2f}",
            ],
            [
                "manual SESR-M5 (5x5 | 5x 3x3 | 5x5)",
                f"{lat_b:.3f}",
                f"{sesr_m_genotype(5, 16).num_parameters() / 1e3:.2f}K",
                f"{m_b['set5']['psnr']:.2f}",
                f"{m_b['div2k-val']['psnr']:.2f}",
            ],
        ],
        "fig9_nas.txt",
    )

    # The searched net is cheaper on the NPU (paper: 15% faster).
    assert lat_s <= lat_b, (lat_s, lat_b)

    if FAST:
        return

    # Latency saving is material, and quality stays close (paper: equal
    # PSNR; we allow a band since the search and training are scaled down).
    assert lat_s <= 0.97 * lat_b
    assert m_s["div2k-val"]["psnr"] > m_b["div2k-val"]["psnr"] - 1.0
