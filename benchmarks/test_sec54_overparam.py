"""§5.4 — SESR vs state-of-the-art overparameterization (ExpandNets, RepVGG).

Paper results (DIV2K-val, 480k training steps):
SESR 35.45 > RepVGG 35.35 ≈ VGG 35.34 ≫ ExpandNet 33.65.

Those orderings are *convergence* phenomena; at this repo's CPU budget
(~600 steps) no scheme is near convergence, so the bench reproduces the
section's mechanisms with budget-independent experiments plus the (caveated)
scaled-down training table:

1. **RepVGG ≡ VGG (Eq. 5), at full SISR scale.**  A RepVGG-SESR trained
   with SGD(η) and its collapsed VGG network trained with SGD(2η) from the
   same function must follow *identical* trajectories — we assert the
   collapsed outputs match to float tolerance after many steps.  (Under
   ADAM the equivalence breaks — also measured, which is why the paper's
   RepVGG/VGG rows differ only by noise.)
2. **Vanishing gradients without short residuals.**  At initialisation,
   the gradient reaching the *middle* trunk blocks of the ExpandNet
   configuration is orders of magnitude smaller than with SESR's
   collapsible short residuals — measured on the real m=11 network.
3. **Head-to-head training** of all four block types under the identical
   scaled-down protocol (table printed with the paper's numbers alongside).
"""

import numpy as np
import pytest

from common import FAST, emit, mean_psnr
from repro.core import build_sesr_variant
from repro.datasets import PatchSampler, SyntheticDataset
from repro.nn import SGD, Tensor, no_grad
from repro.nn.losses import l1_loss

PAPER_DIV2K = {"sesr": 35.45, "repvgg": 35.35, "vgg": 35.34, "expandnet": 33.65}
VARIANTS = ("sesr", "expandnet", "repvgg", "vgg")


# ---------------------------------------------------------------------- #
# experiment 1: exact Eq. 5 equivalence under SGD
# ---------------------------------------------------------------------- #
def repvgg_vgg_sgd_divergence(steps: int = 30, lr: float = 1e-3):
    """Max |out_repvgg − out_vgg| after equivalent SGD training.

    Eq. 5's exact conv-level form: under plain SGD, RepVGG's collapsed
    weight moves with a *constant, time-invariant* preconditioner — the
    1×1 branch doubles the effective learning rate of each kernel's centre
    tap (and of the bias), nothing else.  So a RepVGG net at lr η must
    follow *exactly* the same trajectory as its collapsed VGG net trained
    with that fixed per-tap learning rate.  No adaptivity, no time-varying
    momentum — precisely the paper's point that RepVGG "does not present
    any advantages over the corresponding non-overparameterized models".
    """
    rep = build_sesr_variant("repvgg", f=8, m=3, activation="relu", seed=3)
    vgg = rep.collapse()  # identical function, plain convolutions
    opt_rep = SGD(rep.parameters(), lr=lr)

    def vgg_preconditioned_step() -> None:
        # Centre taps and biases at 2η, off-centre taps at η.
        for layer in (vgg.first, *vgg.convs, vgg.last):
            g = layer.weight.grad
            kh, kw = layer.kernel_size
            mask = np.ones((kh, kw, 1, 1), dtype=np.float32)
            mask[(kh - 1) // 2, (kw - 1) // 2] = 2.0
            layer.weight.data -= lr * mask * g
            layer.bias.data -= 2 * lr * layer.bias.grad
            layer.weight.zero_grad()
            layer.bias.zero_grad()

    ds = SyntheticDataset("div2k", n_images=4, size=(64, 64), scale=2, seed=9)
    sampler = PatchSampler(ds, scale=2, patch_size=12, crops_per_image=8,
                           batch_size=4, seed=10)
    for lr_b, hr_b in sampler.batches(epochs=steps // 8 + 1):
        opt_rep.zero_grad()
        l1_loss(rep(Tensor(lr_b)), Tensor(hr_b)).backward()
        opt_rep.step()
        l1_loss(vgg(Tensor(lr_b)), Tensor(hr_b)).backward()
        vgg_preconditioned_step()
        steps -= 1
        if steps == 0:
            break

    probe = Tensor(np.random.default_rng(0)
                   .random((1, 16, 16, 1)).astype(np.float32))
    with no_grad():
        return float(np.abs(rep(probe).data - vgg(probe).data).max())


# ---------------------------------------------------------------------- #
# experiment 2: gradient flow to the middle trunk block at init
# ---------------------------------------------------------------------- #
def middle_block_gradient_norms(m: int = 11):
    """‖∂L/∂(middle block weights)‖ at init, per variant."""
    rng = np.random.default_rng(5)
    x = Tensor(rng.random((2, 16, 16, 1)).astype(np.float32))
    y = Tensor(rng.random((2, 32, 32, 1)).astype(np.float32))
    norms = {}
    for variant in ("sesr", "expandnet"):
        model = build_sesr_variant(variant, f=16, m=m, expansion=256, seed=0)
        loss = l1_loss(model(x), y)
        loss.backward()
        mid = model.blocks[m // 2]
        g = mid.w_expand.grad
        norms[variant] = float(np.sqrt((g**2).sum()))
    return norms


# ---------------------------------------------------------------------- #
# experiment 3: scaled-down head-to-head training
# ---------------------------------------------------------------------- #
def run_training(cache):
    results = {}
    for variant in VARIANTS:
        _, metrics = cache.get(
            f"sec54/{variant}", 2,
            lambda v=variant: build_sesr_variant(v, scale=2, f=16, m=11,
                                                 expansion=256, seed=0),
        )
        results[variant] = metrics
    results["bicubic"] = cache.bicubic(2)
    return results


@pytest.mark.bench
def test_sec54_overparameterization(benchmark, cache):
    def run_all():
        sgd_gap = repvgg_vgg_sgd_divergence(steps=6 if FAST else 30)
        grad_norms = middle_block_gradient_norms(m=5 if FAST else 11)
        training = run_training(cache)
        return sgd_gap, grad_norms, training

    sgd_gap, grad_norms, results = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = []
    for variant in VARIANTS:
        rows.append([
            variant,
            f"{mean_psnr(results[variant]):.2f}dB",
            f"{results[variant]['div2k-val']['psnr']:.2f}dB",
            f"{PAPER_DIV2K[variant]:.2f}dB",
        ])
    rows.append([
        "bicubic", f"{mean_psnr(results['bicubic']):.2f}dB",
        f"{results['bicubic']['div2k-val']['psnr']:.2f}dB", "-",
    ])
    rows.append([
        "max |RepVGG(η) − VGG(2η)| after SGD", "-", f"{sgd_gap:.2e}", "Eq. 5: 0",
    ])
    rows.append([
        "mid-block ‖grad‖ sesr vs expandnet",
        f"{grad_norms['sesr']:.2e}",
        f"{grad_norms['expandnet']:.2e}",
        f"{grad_norms['sesr'] / grad_norms['expandnet']:.0f}x",
    ])
    emit(
        "§5.4: SESR vs ExpandNets vs RepVGG vs VGG "
        "(training at ~600 steps — orderings converge only at full scale; "
        "mechanism checks below are budget-independent)",
        ["Quantity", "mean PSNR", "DIV2K-val", "paper / note"],
        rows,
        "sec54_overparam.txt",
    )

    # Eq. 5 at SISR scale: RepVGG under SGD *is* VGG at doubled lr.
    assert sgd_gap < 1e-4, sgd_gap

    # Vanishing gradients: without collapsible short residuals the middle
    # trunk blocks of the m=11 network receive drastically less gradient.
    ratio = grad_norms["sesr"] / grad_norms["expandnet"]
    assert ratio > 5.0, grad_norms

    if FAST:
        return

    # Scaled-down training sanity: SESR learns (beats bicubic), and no
    # variant catastrophically diverges.
    assert mean_psnr(results["sesr"]) > mean_psnr(results["bicubic"])
    for variant in VARIANTS:
        assert mean_psnr(results[variant]) > 15.0, variant
