"""Figure 1(a) — PSNR (Set14) vs MACs Pareto frontier, 360p→720p ×2 SISR.

Regenerates the scatter data behind Fig. 1(a) from the zoo registry: the
MAC axis is recomputed from architecture specs where we model them (and
checked against the paper), the PSNR axis uses the paper's reported Set14
numbers.  The assertion is the figure's headline: the SESR family sits on
the Pareto frontier — no other network achieves equal-or-better PSNR with
fewer MACs than any SESR model.
"""

import pytest

import repro.zoo as zoo
from common import emit


def pareto_points():
    """(name, macs_G_720p, psnr_set14) for every ×2 network in the zoo."""
    points = []
    for entry in zoo.entries_for_scale(2):
        macs = entry.reported_macs_g.get(2)
        psnr = entry.reported_quality[2].get("set14", (None, None))[0]
        if macs is None or psnr is None:
            continue
        computed = entry.computed_macs_720p(2)
        points.append((entry.name, macs, psnr, computed))
    return sorted(points, key=lambda p: p[1])


@pytest.mark.bench
def test_fig1a_pareto(benchmark):
    points = benchmark.pedantic(pareto_points, rounds=1, iterations=1)

    rows = [
        [name, f"{macs:.2f}G",
         "-" if computed is None else f"{computed / 1e9:.2f}G",
         f"{psnr:.2f}dB"]
        for name, macs, psnr, computed in points
    ]
    emit(
        "Fig 1(a): PSNR on Set14 vs MACs (x2, 360p->720p)",
        ["Model", "MACs (paper)", "MACs (ours)", "PSNR Set14"],
        rows,
        "fig1a_pareto.txt",
    )

    # Recomputed MAC axis agrees with the paper wherever we model the net.
    for name, macs, _, computed in points:
        if computed is not None:
            assert computed / 1e9 == pytest.approx(macs, rel=0.01), name

    # Headline: every SESR model is Pareto-optimal.
    sesr = [p for p in points if p[0].startswith("SESR")]
    others = [p for p in points if not p[0].startswith("SESR")]
    assert len(sesr) >= 5
    for s_name, s_macs, s_psnr, _ in sesr:
        dominated = [
            o_name
            for o_name, o_macs, o_psnr, _ in others
            if o_macs <= s_macs and o_psnr >= s_psnr
        ]
        assert not dominated, f"{s_name} dominated by {dominated}"

    # And the frontier shifts: SESR-M5 beats FSRCNN with ~2× fewer MACs.
    m5 = next(p for p in points if p[0] == "SESR-M5")
    fsr = next(p for p in points if p[0] == "FSRCNN")
    assert fsr[1] / m5[1] == pytest.approx(1.93, rel=0.05)
    assert m5[2] > fsr[2]
