"""Ablation: the linear block's expansion width ``p`` (paper uses p=256).

DESIGN.md calls this ablation out: ``p`` controls *training-time*
overparameterization only — the collapsed inference network is identical
for every ``p`` (13.52K params for SESR-M5), while the expanded-space
training cost grows linearly in ``p``.  The bench verifies that invariant
analytically and trains SESR-M5 at several widths under the same protocol
to show quality as a function of ``p``.
"""

import pytest

from common import FAST, emit, mean_psnr
from repro.core import SESR

WIDTHS = (16, 64, 256)


def analytic_costs(f=16, m=5, scale=2):
    rows = {}
    for p in WIDTHS:
        model = SESR(scale=scale, f=f, m=m, expansion=p, seed=0)
        expanded_macs_per_px = (
            (25 * 1 * p + p * f) + m * (9 * f * p + p * f)
            + (25 * f * p + p * scale**2)
        )
        rows[p] = {
            "train_params": model.num_parameters(),
            "collapsed_params": model.collapsed_num_parameters(),
            "expanded_macs_per_px": expanded_macs_per_px,
        }
    return rows


def run_ablation(cache):
    results = {}
    for p in WIDTHS:
        _, metrics = cache.get(
            f"ablation/p{p}", 2,
            lambda p=p: SESR(scale=2, f=16, m=5, expansion=p, seed=0),
        )
        results[p] = metrics
    results["bicubic"] = cache.bicubic(2)
    return results


@pytest.mark.bench
def test_ablation_expansion_width(benchmark, cache):
    costs = analytic_costs()
    results = benchmark.pedantic(run_ablation, args=(cache,),
                                 rounds=1, iterations=1)

    rows = []
    for p in WIDTHS:
        rows.append([
            f"p={p}",
            f"{costs[p]['train_params'] / 1e3:.1f}K",
            f"{costs[p]['collapsed_params'] / 1e3:.2f}K",
            f"{costs[p]['expanded_macs_per_px'] / 1e3:.1f}K",
            f"{mean_psnr(results[p]):.2f}dB",
        ])
    rows.append(["bicubic", "-", "-", "-",
                 f"{mean_psnr(results['bicubic']):.2f}dB"])
    emit(
        "Ablation: linear-block expansion width p (SESR-M5; paper uses 256)",
        ["width", "train params", "collapsed params",
         "expanded MACs/px", "mean PSNR"],
        rows,
        "ablation_expansion.txt",
    )

    # The invariant: p changes training cost only, never the deployed net.
    collapsed = {costs[p]["collapsed_params"] for p in WIDTHS}
    assert collapsed == {13520}
    assert costs[256]["train_params"] > 10 * costs[16]["train_params"]
    assert (
        costs[256]["expanded_macs_per_px"]
        > 10 * costs[16]["expanded_macs_per_px"]
    )

    if FAST:
        return

    # Every width trains to better-than-bicubic under the short protocol.
    bicubic = mean_psnr(results["bicubic"])
    for p in WIDTHS:
        assert mean_psnr(results[p]) > bicubic, p

    # Wider expansion helps (the overparameterization benefit the paper's
    # p=256 choice banks on); allow a small noise band.
    assert mean_psnr(results[256]) > mean_psnr(results[16]) - 0.05
