"""Benchmark-harness fixtures."""

import sys
import os

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from common import ModelResultCache  # noqa: E402


@pytest.fixture(scope="session")
def cache() -> ModelResultCache:
    """Session-wide trained-model cache shared by the quality benches."""
    return ModelResultCache()


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark harness tests")
