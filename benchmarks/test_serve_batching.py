"""Cross-request dynamic batching: throughput at high client concurrency.

The scenario the scheduler exists for: many concurrent clients, each
posting a *small* frame (one tile per request), so per-request work is
dispatch-dominated and the only lever is coalescing tiles from different
requests into shared forward passes.  Grid: ``batch_window_ms = 0``
(coalescing off — the pre-batching engine, pinned bit-identical) against
increasing windows, all at the same worker count and with the output
cache off.

Assertions are functional only — coalescing actually happened, outputs
stay bit-identical to the unbatched engine, every configuration sustains
traffic — because wall-clock ratios are host-dependent.  The measured
req/s and p50/p99 go into the emitted table (results/serve_batching.txt)
where CI archives them; this file also runs (assert-only) as the
``bench-smoke`` CI job.
"""

import os
import threading
from time import perf_counter

import numpy as np
import pytest

from common import FAST, emit
from repro.serve import EngineConfig, InferenceEngine, ModelKey, ModelRegistry

FRAME = (24, 24)          # one tile per request: the coalescing-bound case
CLIENTS = 8               # ISSUE floor: gains demonstrated at >= 8 clients
REQUESTS_PER_CLIENT = 3 if FAST else 8
WORKERS = 2               # fewer workers than clients => a real backlog
WINDOWS_MS = (0.0, 2.0, 10.0)

BASE = EngineConfig(
    workers=WORKERS, tile=32, cache_size=0, max_pending=64,
    max_batch=8, supervise=False,
)


def run_load(engine: InferenceEngine, frames) -> dict:
    """All clients start together (barrier) and drain their request list."""
    errors = []
    outputs = [None] * len(frames)
    barrier = threading.Barrier(CLIENTS)
    per_client = len(frames) // CLIENTS

    def client(c: int) -> None:
        barrier.wait()
        for r in range(per_client):
            i = c * per_client + r
            try:
                outputs[i] = engine.upscale(frames[i])
            except Exception as exc:  # noqa: BLE001 — benchmark bookkeeping
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(CLIENTS)]
    start = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = perf_counter() - start
    assert not errors, errors
    latency = engine.telemetry.histogram("engine.request_latency_ms")
    stats = engine.stats()["batching"]
    return {
        "outputs": outputs,
        "rps": len(frames) / elapsed,
        "p50": latency.percentile(50),
        "p99": latency.percentile(99),
        "mean_batch": stats["mean_batch_size"],
        "coalesce_ratio": stats["coalesce_ratio"],
    }


@pytest.mark.bench
def test_serve_batching():
    registry = ModelRegistry()
    key = ModelKey(name="M5", scale=2)
    rng = np.random.default_rng(0)
    frames = [
        rng.random(FRAME).astype(np.float32)
        for _ in range(CLIENTS * REQUESTS_PER_CLIENT)
    ]

    results = {}
    for window in WINDOWS_MS:
        with InferenceEngine(
            registry, key, config=BASE.replace(batch_window_ms=window)
        ) as engine:
            results[window] = run_load(engine, frames)

    base = results[0.0]
    rows = [
        [f"{window:g}", f"{r['rps']:.1f}", f"{r['rps'] / base['rps']:.2f}x",
         f"{r['p50']:.1f}", f"{r['p99']:.1f}",
         f"{r['mean_batch']:.2f}", f"{r['coalesce_ratio']:.2f}"]
        for window, r in results.items()
    ]
    emit(
        f"Cross-request batching — SESR-M5 x2, {FRAME[1]}x{FRAME[0]} LR "
        f"frames, {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"{WORKERS} workers (host: {os.cpu_count()} cores)",
        ["window ms", "req/s", "speedup", "p50 ms", "p99 ms",
         "mean batch", "coalesce"],
        rows,
        "serve_batching.txt",
    )

    # Functional floors (host-independent):
    # 1. every configuration sustained traffic,
    assert all(r["rps"] > 0 for r in results.values())
    # 2. with a window open, cross-request coalescing actually happened,
    for window in WINDOWS_MS[1:]:
        assert results[window]["mean_batch"] > 1.0, window
        assert results[window]["coalesce_ratio"] > 0.0, window
    # 3. window 0 never coalesced (the pinned legacy path),
    assert results[0.0]["mean_batch"] == 1.0
    assert results[0.0]["coalesce_ratio"] == 0.0
    # 4. batching is a throughput knob, not an accuracy knob: outputs are
    #    bit-identical across every window, including 0.
    for window in WINDOWS_MS[1:]:
        for got, want in zip(results[window]["outputs"], base["outputs"]):
            assert np.array_equal(got, want)
    # 5. the whole grid collapsed the model exactly once (registry cache).
    assert registry.collapse_count(key) == 1
