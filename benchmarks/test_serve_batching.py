"""Cross-request dynamic batching: throughput at high client concurrency.

The scenario the scheduler exists for: many concurrent clients, each
posting a *small* frame (one tile per request), so per-request work is
dispatch-dominated and the only lever is coalescing tiles from different
requests into shared forward passes.  Grid: ``gemm_backend`` in
``{blas, blocked}`` x ``batch_window_ms = 0`` (coalescing off — the
pre-batching engine, pinned bit-identical) against increasing windows,
all at the same worker count and with the output cache off.

The ``blocked`` rows exercise the deterministic blocked GEMM kernel:
a coalesced batch runs ONE stacked GEMM per conv (asserted via profiler
op counts — ``gemm.blocked`` calls == convs x dispatches), and the
outputs stay bit-identical to the window-0 singles of the same backend.
``blas`` and ``blocked`` are *not* compared bitwise to each other — they
are different summation orders by design; each backend is compared to
itself across windows.

Assertions are functional (host-independent) everywhere; the throughput
ordering is asserted only on hosts with >= 2 cores, where coalescing can
actually buy wall-clock.  The measured req/s and p50/p99 go into the
emitted table (results/serve_batching.txt) where CI archives them; this
file also runs (assert-only) as the ``bench-smoke`` CI job.
"""

import os
import threading
from time import perf_counter

import numpy as np
import pytest

from common import FAST, emit
from repro.obs.profiler import profile
from repro.serve import EngineConfig, InferenceEngine, ModelKey, ModelRegistry

FRAME = (24, 24)          # one tile per request: the coalescing-bound case
CLIENTS = 8               # ISSUE floor: gains demonstrated at >= 8 clients
REQUESTS_PER_CLIENT = 3 if FAST else 8
WORKERS = 2               # fewer workers than clients => a real backlog
WINDOWS_MS = (0.0, 2.0, 10.0)
BACKENDS = ("blas", "blocked")

BASE = EngineConfig(
    workers=WORKERS, tile=32, cache_size=0, max_pending=64,
    max_batch=8, supervise=False,
)


def run_load(engine: InferenceEngine, frames) -> dict:
    """All clients start together (barrier) and drain their request list."""
    errors = []
    outputs = [None] * len(frames)
    barrier = threading.Barrier(CLIENTS)
    per_client = len(frames) // CLIENTS

    def client(c: int) -> None:
        barrier.wait()
        for r in range(per_client):
            i = c * per_client + r
            try:
                outputs[i] = engine.upscale(frames[i])
            except Exception as exc:  # noqa: BLE001 — benchmark bookkeeping
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(CLIENTS)]
    with profile() as prof:
        start = perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = perf_counter() - start
    assert not errors, errors
    latency = engine.telemetry.histogram("engine.request_latency_ms")
    snap = engine.stats()
    stats = snap["batching"]
    return {
        "outputs": outputs,
        "rps": len(frames) / elapsed,
        "p50": latency.percentile(50),
        "p99": latency.percentile(99),
        "mean_batch": stats["mean_batch_size"],
        "coalesce_ratio": stats["coalesce_ratio"],
        "dispatches": snap["counters"]["engine.batches"],
        "fallbacks": stats["batch_fallbacks"],
        "gemms": {op: st.calls for op, st in prof.stats().items()
                  if op.startswith("gemm.")},
    }


@pytest.mark.bench
def test_serve_batching():
    registry = ModelRegistry()
    key = ModelKey(name="M5", scale=2)
    # Calibrate: one blocked forward pass records exactly one gemm.blocked
    # per conv step — that count anchors assertion 5 below.
    compiled = registry.get_compiled(key)
    compiled.set_gemm_backend("blocked")
    with profile() as cal:
        compiled.run(np.zeros((1, 8, 8, 1), dtype=np.float32))
    n_convs = cal.stats()["gemm.blocked"].calls
    assert n_convs > 0
    rng = np.random.default_rng(0)
    frames = [
        rng.random(FRAME).astype(np.float32)
        for _ in range(CLIENTS * REQUESTS_PER_CLIENT)
    ]

    results = {}
    for backend in BACKENDS:
        for window in WINDOWS_MS:
            cfg = BASE.replace(batch_window_ms=window, gemm_backend=backend)
            with InferenceEngine(registry, key, config=cfg) as engine:
                results[backend, window] = run_load(engine, frames)

    rows = [
        [backend, f"{window:g}", f"{r['rps']:.1f}",
         f"{r['rps'] / results[backend, 0.0]['rps']:.2f}x",
         f"{r['p50']:.1f}", f"{r['p99']:.1f}",
         f"{r['mean_batch']:.2f}", f"{r['coalesce_ratio']:.2f}"]
        for (backend, window), r in results.items()
    ]
    emit(
        f"Cross-request batching — SESR-M5 x2, {FRAME[1]}x{FRAME[0]} LR "
        f"frames, {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"{WORKERS} workers (host: {os.cpu_count()} cores); speedup is "
        f"vs window 0 of the same gemm backend",
        ["backend", "window ms", "req/s", "speedup", "p50 ms", "p99 ms",
         "mean batch", "coalesce"],
        rows,
        "serve_batching.txt",
    )

    # Functional floors (host-independent):
    # 1. every configuration sustained traffic,
    assert all(r["rps"] > 0 for r in results.values())
    for backend in BACKENDS:
        # 2. with a window open, cross-request coalescing actually happened,
        for window in WINDOWS_MS[1:]:
            assert results[backend, window]["mean_batch"] > 1.0, \
                (backend, window)
            assert results[backend, window]["coalesce_ratio"] > 0.0, \
                (backend, window)
        # 3. window 0 never coalesced (the pinned legacy path),
        assert results[backend, 0.0]["mean_batch"] == 1.0
        assert results[backend, 0.0]["coalesce_ratio"] == 0.0
        # 4. batching is a throughput knob, not an accuracy knob: outputs
        #    are bit-identical across every window of the same backend,
        #    including 0 — for `blocked` this is exactly the m-invariance
        #    the kernel exists for (one stacked GEMM == N single runs).
        base = results[backend, 0.0]
        for window in WINDOWS_MS[1:]:
            for got, want in zip(results[backend, window]["outputs"],
                                 base["outputs"]):
                assert np.array_equal(got, want)
    # 5. the blocked backend issued ONE stacked GEMM per conv per dispatch
    #    — never per sample — and no BLAS GEMM at all; the blas backend
    #    never touched the blocked kernel.
    for (backend, window), r in results.items():
        if r["fallbacks"]:  # pragma: no cover — fault-free run
            continue
        if backend == "blocked":
            assert r["gemms"].get("gemm.blocked") == \
                n_convs * r["dispatches"], (window, r["gemms"])
            assert "gemm.blas" not in r["gemms"]
        else:
            assert "gemm.blocked" not in r["gemms"]
    # 6. the whole grid collapsed the model exactly once (registry cache).
    assert registry.collapse_count(key) == 1
    # 7. on hosts with real parallelism, an open window beats window 0
    #    (dispatch-dominated traffic is the case batching exists for).
    if not FAST and (os.cpu_count() or 1) >= 2:
        for backend in BACKENDS:
            best = max(
                results[backend, w]["rps"] for w in WINDOWS_MS[1:]
            )
            assert best > results[backend, 0.0]["rps"], backend
