"""§5.5 — ablations: residuals/linear blocks, and PReLU→ReLU + long residual.

Paper numbers (DIV2K validation, SESR-M11, 480k steps):

* full SESR-M11 .............................. 35.45 dB
* short residuals but *no* linear blocks ..... 35.25 dB  (−0.20)
* ReLU + long input residual removed ......... ≈ −0.10 dB (hardware variant)

The bench trains four variants identically: the two paper ablations plus a
``relu_only`` variant (PReLU→ReLU with the long residual kept) that
isolates the activation swap from the residual removal.  At this repo's
~600-step budget the *linear-blocks* and *activation* ablation directions
reproduce; removing the long input residual costs far more than the
paper's 0.1 dB because the identity map has to be learned — a documented
convergence artifact of the scale-down (EXPERIMENTS.md), not a claim
violation: the paper's −0.1 dB is measured at full convergence.
"""

import pytest

from common import FAST, emit, mean_psnr
from repro.core import SESR


def run_sec55(cache):
    variants = {
        "full": lambda: SESR.from_name("M11", scale=2, seed=0),
        "no_linear_blocks": lambda: SESR(
            scale=2, f=16, m=11, seed=0,
            linear_blocks=False, short_residuals=True,
        ),
        "relu_only": lambda: SESR.from_name(
            "M11", scale=2, seed=0, activation="relu",
        ),
        "relu_no_input_residual": lambda: SESR.from_name(
            "M11", scale=2, seed=0,
            activation="relu", input_residual=False,
        ),
    }
    results = {}
    for name, factory in variants.items():
        _, metrics = cache.get(f"sec55/{name}", 2, factory)
        results[name] = metrics
    results["bicubic"] = cache.bicubic(2)
    return results


@pytest.mark.bench
def test_sec55_ablations(benchmark, cache):
    results = benchmark.pedantic(run_sec55, args=(cache,),
                                 rounds=1, iterations=1)

    paper = {
        "full": "35.45",
        "no_linear_blocks": "35.25",
        "relu_only": "~35.4 (activation swap alone)",
        "relu_no_input_residual": "~35.35 (at full convergence)",
        "bicubic": "-",
    }
    emit(
        "§5.5: residual / activation ablations (SESR-M11)",
        ["Variant", "mean PSNR", "DIV2K-val", "DIV2K-val (paper)"],
        [
            [name, f"{mean_psnr(m):.2f}dB",
             f"{m['div2k-val']['psnr']:.2f}dB", paper[name]]
            for name, m in results.items()
        ],
        "sec55_ablations.txt",
    )

    if FAST:
        assert all(mean_psnr(m) > 2 for m in results.values())  # not NaN/diverged
        return

    full = mean_psnr(results["full"])
    plain = mean_psnr(results["no_linear_blocks"])
    relu_only = mean_psnr(results["relu_only"])
    hw = mean_psnr(results["relu_no_input_residual"])
    bicubic = mean_psnr(results["bicubic"])

    # Linear blocks help beyond short residuals alone (paper: +0.20 dB).
    assert full > plain - 0.05, (full, plain)

    # Ablation severity ordering: swapping PReLU→ReLU costs less than also
    # removing the long input residual (the paper bundles both into −0.1 dB
    # at full convergence; at this budget each gap is inflated but the
    # ordering is stable).
    assert relu_only > hw, (relu_only, hw)
    assert relu_only > bicubic - 1.5, (relu_only, bicubic)

    # The full model learns; the no-input-residual variant still trains
    # (its large measured gap vs `full` is the documented scale-down
    # artifact — at 480k steps it closes to ~0.1 dB).
    assert full > bicubic
    assert hw > 15.0
