"""Microbenchmarks of the NumPy substrate itself.

Unlike the table/figure regenerators (which use pytest-benchmark as a
one-shot harness), these are honest repeated-measurement benchmarks of the
operations every experiment spends its time in: convolution forward,
training step in collapsed vs expanded space (the §3.3 speedup, measured
rather than counted), collapse export, and the NPU estimator itself.
"""

import numpy as np
import pytest

from common import FAST
from repro.core import SESR, CollapsibleLinearBlock
from repro.hw import ETHOS_N78_4TOPS, estimate, sesr_hw_graph
from repro.nn import Adam, Tensor, conv2d, no_grad
from repro.nn.losses import l1_loss

SIZE = (8, 24, 24, 16) if FAST else (8, 48, 48, 16)


@pytest.mark.bench
def test_micro_conv2d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    w = Tensor(rng.standard_normal((3, 3, 16, 16)).astype(np.float32))

    def fwd():
        with no_grad():
            return conv2d(x, w, padding="same")

    out = benchmark(fwd)
    assert out.shape == SIZE


@pytest.mark.bench
def test_micro_conv2d_train_step(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    w = Tensor(rng.standard_normal((3, 3, 16, 16)).astype(np.float32),
               requires_grad=True)

    def step():
        w.zero_grad()
        loss = (conv2d(x, w, padding="same") ** 2).mean()
        loss.backward()
        return loss

    benchmark(step)
    assert w.grad is not None


def _block_step(block, x, y, opt):
    opt.zero_grad()
    loss = l1_loss(block(x), y)
    loss.backward()
    opt.step()
    return loss


@pytest.mark.bench
def test_micro_collapsed_space_step(benchmark):
    """One training step with the §3.3 efficient (collapsed) forward."""
    rng = np.random.default_rng(1)
    block = CollapsibleLinearBlock(16, 16, 3, expansion=256, residual=True,
                                   mode="collapsed", rng=rng)
    x = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    y = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    opt = Adam(block.parameters(), lr=1e-4)
    benchmark(_block_step, block, x, y, opt)


@pytest.mark.bench
def test_micro_expanded_space_step(benchmark):
    """The naive (ExpandNets-style) training step, for comparison."""
    rng = np.random.default_rng(1)
    block = CollapsibleLinearBlock(16, 16, 3, expansion=256, residual=True,
                                   mode="expanded", rng=rng)
    x = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    y = Tensor(rng.standard_normal(SIZE).astype(np.float32))
    opt = Adam(block.parameters(), lr=1e-4)
    benchmark(_block_step, block, x, y, opt)


@pytest.mark.bench
def test_micro_collapse_export(benchmark):
    """Algorithm 1 + 2 export of a trained SESR-M5."""
    model = SESR.from_name("M5", scale=2, seed=0)
    collapsed = benchmark(model.collapse)
    assert collapsed.collapsed_num_parameters() == 13520


@pytest.mark.bench
def test_micro_npu_estimator(benchmark):
    """One full Table-3 style estimate (1080p SESR-M5)."""
    graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
    report = benchmark(estimate, graph, ETHOS_N78_4TOPS)
    assert report.runtime_sec > 0


@pytest.mark.bench
def test_micro_eager_collapsed_forward(benchmark):
    """Eager inference forward of the collapsed SESR-M5 (serving tile)."""
    from repro.nn import Tensor as _T

    model = SESR.from_name("M5", scale=2, seed=0).collapse()
    model.eval()
    rng = np.random.default_rng(2)
    x = _T(rng.random((1, 96, 96, 1)).astype(np.float32))

    def fwd():
        with no_grad():
            return model(x)

    out = benchmark(fwd)
    assert out.shape == (1, 192, 192, 1)


@pytest.mark.bench
def test_micro_compiled_forward(benchmark):
    """The same forward through the repro.compile planned-buffer executor."""
    from repro.compile import compile_model

    compiled = compile_model(SESR.from_name("M5", scale=2, seed=0).collapse())
    rng = np.random.default_rng(2)
    x = rng.random((1, 96, 96, 1)).astype(np.float32)
    out = benchmark(compiled.run, x)
    assert out.shape == (1, 192, 192, 1)
