"""Compiled-vs-eager micro-benchmark of the collapsed inference path.

Honest repeated-measurement timing of the M5 ×2 serving tile path: the
same collapsed network runs through the eager ``repro.nn`` forward and
through the :mod:`repro.compile` planned-buffer executor (which is
bit-identical — see ``tests/compile/test_executor.py``).  Alongside
wall-clock the table reports the planner's peak intermediate bytes vs the
eager per-op-allocation peak.  Results are committed as
``results/compile_micro.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from common import FAST
from repro.compile import compile_model
from repro.core import SESR
from repro.deploy import quantize_sesr
from repro.nn import Tensor, no_grad
from repro.utils import format_table

REPEATS = 10 if FAST else 40
SIZES = (48, 96) if FAST else (48, 96, 192)


def _median_ms(fn, repeats=REPEATS) -> float:
    fn()  # warm-up: arena/cols allocation, BLAS thread pools
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples) * 1000)


def _bench_model(model, compiled, size: int) -> dict:
    rng = np.random.default_rng(size)
    x = rng.random((1, size, size, 1)).astype(np.float32)

    def eager():
        with no_grad():
            model(Tensor(x))

    eager_ms = _median_ms(eager)
    compiled_ms = _median_ms(lambda: compiled.run(x))
    mem = compiled.memory_stats(size, size)
    return {
        "size": size,
        "eager_ms": round(eager_ms, 4),
        "compiled_ms": round(compiled_ms, 4),
        "speedup": round(eager_ms / compiled_ms, 4),
        "arena_bytes": mem["arena_bytes"],
        "naive_bytes": mem["naive_bytes"],
    }


@pytest.mark.bench
def test_compile_micro():
    model = SESR.from_name("M5", scale=2, expansion=16).collapse()
    model.eval()
    cases = {
        "fp32": (model, compile_model(model)),
    }
    if not FAST:
        quantized = quantize_sesr(model)
        cases["int8"] = (quantized, compile_model(quantized))

    results = {
        "model": "SESR-M5",
        "scale": 2,
        "repeats": REPEATS,
        "cases": {
            name: [_bench_model(m, c, size) for size in SIZES]
            for name, (m, c) in cases.items()
        },
    }

    rows = [
        [name, r["size"], f"{r['eager_ms']:.2f}", f"{r['compiled_ms']:.2f}",
         f"{r['speedup']:.2f}x", f"{r['arena_bytes']:,}",
         f"{r['naive_bytes']:,}"]
        for name, rs in results["cases"].items()
        for r in rs
    ]
    text = format_table(
        ["precision", "LR size", "eager ms", "compiled ms", "speedup",
         "arena B", "naive B"],
        rows,
        title=f"Compiled vs eager forward — SESR-M5 x2 "
              f"(host: {os.cpu_count()} cores)",
    )
    print("\n" + text)
    out_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "compile_micro.json"), "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    # The planner's win is deterministic; pin it hard.
    for rs in results["cases"].values():
        for r in rs:
            assert r["arena_bytes"] < r["naive_bytes"]
    # Wall-clock is host-dependent; require the 96x96 serving-tile case
    # (the shape `repro serve` fans out by default) to not regress, with
    # slack for noisy CI hosts.
    tile = next(r for r in results["cases"]["fp32"] if r["size"] == 96)
    assert tile["compiled_ms"] < tile["eager_ms"] * 1.1
