"""§4 — theoretical properties of the overparameterization schemes.

Regenerates the section's analytical story as an experiment: gradient-descent
trajectories of VGG / ExpandNet / SESR / RepVGG parameterizations on the
Eq. 1 regression problem, plus the vanishing-gradient depth sweep that
explains why ExpandNet-style doubling of depth hurts (the paper's 13 vs 26
layer argument).
"""

import numpy as np
import pytest

from common import emit
from repro.theory import (
    RepVGGLinear,
    VGGLinear,
    chain_gradient_magnitude,
    compare_schemes,
    make_regression,
    train,
)


def run_theory():
    trajectories = compare_schemes(d=6, k=6, n=256, lr=0.02, steps=200, seed=0)

    # RepVGG vs VGG(2η) exact-equality check on a fresh problem.
    rng = np.random.default_rng(1)
    x, y, _ = make_regression(6, 6, 256, rng)
    beta0 = 0.1 * rng.standard_normal((6, 6))
    t_rep = train(RepVGGLinear(beta0), x, y, lr=1e-3, steps=100)
    t_vgg2 = train(VGGLinear(beta0), x, y, lr=2e-3, steps=100)
    repvgg_vs_vgg_gap = max(
        float(np.abs(a - b).max()) for a, b in zip(t_rep.betas, t_vgg2.betas)
    )

    grads = {
        depth: {
            residual: float(np.mean([
                chain_gradient_magnitude(depth, residual,
                                         np.random.default_rng(i))
                for i in range(300)
            ]))
            for residual in (False, True)
        }
        for depth in (13, 26)
    }
    return trajectories, repvgg_vs_vgg_gap, grads


@pytest.mark.bench
def test_sec4_theory(benchmark):
    trajectories, gap, grads = benchmark.pedantic(
        run_theory, rounds=1, iterations=1
    )

    rows = [
        [scheme, f"{t.losses[0]:.4f}", f"{t.losses[50]:.5f}",
         f"{t.final_loss:.6f}"]
        for scheme, t in trajectories.items()
    ]
    rows.append(["max |β_repvgg − β_vgg(2η)|", "-", "-", f"{gap:.2e}"])
    for depth, by_res in grads.items():
        rows.append([
            f"|∂out/∂w₁|, depth {depth}",
            f"no-res: {by_res[False]:.2e}",
            f"res: {by_res[True]:.2e}",
            f"{by_res[True] / max(by_res[False], 1e-300):.1e}x",
        ])
    emit(
        "§4: gradient-update properties of overparameterization schemes",
        ["Quantity", "t=0", "t=50", "final"],
        rows,
        "sec4_theory.txt",
    )

    # Eq. 5: RepVGG ≡ VGG at doubled lr — to machine precision.
    assert gap < 1e-10

    # Eqs. 3–4: adaptive schemes outperform plain GD on this problem.
    assert trajectories["sesr"].final_loss < trajectories["vgg"].final_loss
    assert trajectories["expandnet"].final_loss < trajectories["vgg"].final_loss

    # Vanishing gradients: at the 26-layer depth ExpandNets effectively
    # trains (13 collapsed layers → 26 expanded), no-residual chains lose
    # ≥ 6 orders of magnitude of gradient signal vs residual chains.
    assert grads[26][False] < grads[26][True] * 1e-6
    # And the decay is depth-driven.
    assert grads[26][False] < grads[13][False]
