"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper has a bench module in this directory.
Quality benches train models under the §5.1 protocol scaled down for CPU
(see :data:`BENCH_CONFIG`); the scale-down is uniform across models, so the
*orderings* the paper reports are preserved while absolute PSNR differs
(synthetic data, fewer steps).  Set ``REPRO_BENCH_FAST=1`` for a quick smoke
pass of the whole harness.

Trained models are cached per pytest session so benches that share a model
(e.g. Table 1 and Table 2's ×2→×4 transfer) train it once.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.datasets import benchmark_suites
from repro.train import ExperimentConfig, bicubic_baseline, run_experiment
from repro.utils import format_table

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

#: suites evaluated by the quality benches (the paper's six datasets).
SUITE_NAMES = ("set5", "set14", "bsd100", "urban100", "manga109", "div2k-val")
#: map suite names to the zoo registry's dataset keys.
SUITE_TO_ZOO = {
    "set5": "set5", "set14": "set14", "bsd100": "bsd100",
    "urban100": "urban100", "manga109": "manga109", "div2k-val": "div2k",
}

EVAL_SIZE = (96, 96)
EVAL_IMAGES = 3 if FAST else 6


def train_config(scale: int = 2) -> ExperimentConfig:
    """The scaled-down §5.1 protocol used by all quality benches."""
    if FAST:
        return ExperimentConfig(
            scale=scale, epochs=2, train_images=4, train_size=(64, 64),
            patch_size=16, crops_per_image=8, batch_size=8, lr=2e-3,
        )
    return ExperimentConfig(
        scale=scale, epochs=25, train_images=12, train_size=(96, 96),
        patch_size=16, crops_per_image=16, batch_size=8, lr=1e-3,
    )


def finetune_config(scale: int) -> ExperimentConfig:
    """Schedule for ×4 heads warm-started from ×2 trunks.

    The paper's §5.1 protocol runs the *full* schedule from the ×2
    initialisation (the warm start buys quality, not steps); the ×4
    fine-tune uses the paper's own lr (5e-4) plus gradient clipping —
    the fresh 16-channel head on a pretrained deep trunk is the least
    stable configuration at this compressed budget (M11 diverges at 1e-3).
    """
    cfg = train_config(scale)
    cfg.lr = 5e-4
    cfg.grad_clip = 1.0
    return cfg


def eval_suites(scale: int):
    return benchmark_suites(
        scale, names=SUITE_NAMES, size=EVAL_SIZE, n_images=EVAL_IMAGES
    )


class ModelResultCache:
    """Session cache: (name, scale) -> (model, {suite: {psnr, ssim}})."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, int], Tuple[object, Dict]] = {}
        self._suites: Dict[int, Dict] = {}

    def suites(self, scale: int):
        if scale not in self._suites:
            self._suites[scale] = eval_suites(scale)
        return self._suites[scale]

    def bicubic(self, scale: int) -> Dict[str, Dict[str, float]]:
        key = ("Bicubic", scale)
        if key not in self._store:
            metrics = bicubic_baseline(self.suites(scale), scale)
            self._store[key] = (None, metrics)
        return self._store[key][1]

    def get(
        self,
        name: str,
        scale: int,
        factory: Callable[[], object],
        config: Optional[ExperimentConfig] = None,
    ) -> Tuple[object, Dict[str, Dict[str, float]]]:
        """Train-and-evaluate ``factory()`` once per session."""
        key = (name, scale)
        if key not in self._store:
            model = factory()
            cfg = config or train_config(scale)
            result = run_experiment(model, cfg, self.suites(scale))
            self._store[key] = (model, result.metrics)
        return self._store[key]

    def put(self, name: str, scale: int, model, metrics) -> None:
        self._store[(name, scale)] = (model, metrics)

    def has(self, name: str, scale: int) -> bool:
        return (name, scale) in self._store


def mean_psnr(metrics: Dict[str, Dict[str, float]]) -> float:
    """Mean PSNR across the evaluation suites."""
    return float(np.mean([m["psnr"] for m in metrics.values()]))


def quality_row(metrics: Dict[str, Dict[str, float]]) -> list:
    """One table row of 'psnr/ssim' cells in suite order."""
    return [
        f"{metrics[s]['psnr']:.2f}/{metrics[s]['ssim']:.4f}"
        for s in SUITE_NAMES
    ]


def emit(title: str, headers, rows, filename: str) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = format_table(headers, rows, title=title)
    print("\n" + text)
    out_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, filename), "w") as fh:
        fh.write(text + "\n")
    return text
