"""Figures 5–8 — qualitative comparison, made quantitative.

The paper's qualitative figures show SESR-M5/M11 reconstructing sharper
edges with less halo than FSRCNN at equal-or-lower MACs.  This bench
regenerates the comparison panels (bicubic / FSRCNN / SESR-M5 / SESR-M11 /
ground truth crops, written as PGM images under
``benchmarks/results/qualitative/``) and scores the visual claims with
edge-fidelity metrics:

* GMS (gradient-magnitude similarity) — edge-structure match to HR;
* edge-PSNR — PSNR on the top-decile gradient pixels, where blur and halo
  live.

Assertions: SESR-M5 beats FSRCNN on both edge metrics (the Figs. 5/7
claim), per suite and averaged.
"""

import os

import numpy as np
import pytest

from common import FAST, emit
from repro.core import SESR, FSRCNN
from repro.datasets import bicubic_upscale, save_image
from repro.metrics import psnr
from repro.metrics.edges import edge_psnr, gms
from repro.train import predict_image

SUITES = ("set14", "urban100", "manga109")
MODELS = ("Bicubic", "FSRCNN (our setup)", "SESR-M5", "SESR-M11")


def run_qualitative(cache):
    # Ensure trained models exist in the cache (shared with Table 1).
    cache.get("FSRCNN (our setup)", 2, lambda: FSRCNN(scale=2, seed=0))
    cache.get("SESR-M5", 2, lambda: SESR.from_name("M5", scale=2, seed=0))
    cache.get("SESR-M11", 2, lambda: SESR.from_name("M11", scale=2, seed=0))

    out_dir = os.path.join(os.path.dirname(__file__), "results", "qualitative")
    os.makedirs(out_dir, exist_ok=True)

    scores = {m: {"gms": [], "edge_psnr": [], "psnr": []} for m in MODELS}
    crops_per_suite = 1 if FAST else 3
    for suite_name in SUITES:
        suite = cache.suites(2)[suite_name]
        for idx in range(min(crops_per_suite, len(suite))):
            lr_img, hr_img = suite[idx]
            panels = {"HR": hr_img, "Bicubic": np.clip(
                bicubic_upscale(lr_img, 2), 0, 1)}
            for model_name in MODELS[1:]:
                model = cache.get(model_name, 2, None)[0]
                panels[model_name] = predict_image(model, lr_img)
            for name, img in panels.items():
                tag = name.replace(" ", "_").replace("(", "").replace(")", "")
                save_image(
                    os.path.join(out_dir, f"{suite_name}{idx}_{tag}.pgm"), img
                )
            for model_name in MODELS:
                img = panels.get(model_name)
                scores[model_name]["gms"].append(gms(img, hr_img))
                scores[model_name]["edge_psnr"].append(edge_psnr(img, hr_img))
                scores[model_name]["psnr"].append(psnr(img, hr_img, border=2))
    return scores


@pytest.mark.bench
def test_fig5_qualitative(benchmark, cache):
    scores = benchmark.pedantic(run_qualitative, args=(cache,),
                                rounds=1, iterations=1)

    rows = []
    for model_name in MODELS:
        s = scores[model_name]
        rows.append([
            model_name,
            f"{np.mean(s['gms']):.4f}",
            f"{np.mean(s['edge_psnr']):.2f}dB",
            f"{np.mean(s['psnr']):.2f}dB",
        ])
    emit(
        "Figs 5-8 (quantified): edge fidelity on one crop per suite "
        f"{SUITES} — panels written to benchmarks/results/qualitative/",
        ["Model", "GMS (edges)", "edge-PSNR", "PSNR"],
        rows,
        "fig5_qualitative.txt",
    )

    if FAST:
        return

    # The figures' claim: SESR reconstructs edges better than FSRCNN.
    m5, fsr = scores["SESR-M5"], scores["FSRCNN (our setup)"]
    assert np.mean(m5["gms"]) > np.mean(fsr["gms"])
    assert np.mean(m5["edge_psnr"]) > np.mean(fsr["edge_psnr"])
    # And at least competitive with plain bicubic on edge structure even
    # at this training budget (at convergence SESR clearly exceeds it —
    # the Table-1 suite means already show model > bicubic overall).
    bi = scores["Bicubic"]
    assert np.mean(m5["gms"]) > 0.95 * np.mean(bi["gms"])