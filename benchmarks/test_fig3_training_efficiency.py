"""Figure 3 / §3.3 — efficient training via per-step collapse.

The paper's claim: a single SESR-M5 forward pass on a batch of 32 64×64
images costs **41.77B MACs** in expanded space but only **1.84B** with the
collapsed-space implementation (weights are tiny next to feature maps, so
collapsing every step is nearly free).

We regenerate both MAC counts analytically (they are pure arithmetic) and
also measure actual wall-clock of the two training modes on our substrate.
"""

import time

import numpy as np
import pytest

from common import FAST, emit
from repro.core import SESR
from repro.nn import Tensor


def analytic_fwd_macs(f: int, m: int, p: int, batch: int, size: int, scale: int = 2):
    """Forward-pass MACs of SESR in expanded vs collapsed space."""
    px = batch * size * size
    s2 = scale * scale
    # Expanded: each linear block runs k×k (x→p) then 1×1 (p→y).
    expanded_per_px = (
        (25 * 1 * p + p * f)
        + m * (9 * f * p + p * f)
        + (25 * f * p + p * s2)
    )
    # Collapsed: the narrow m+2 conv network (paper parameter formula).
    collapsed_per_px = 25 * 1 * f + m * 9 * f * f + 25 * f * s2
    # Collapsing cost per step: composing weights is k²·x·p·y per block —
    # independent of image size and batch (this is the whole point).
    collapse_cost = (
        25 * 1 * p * f + m * 9 * f * p * f + 25 * f * p * s2
    )
    return expanded_per_px * px, collapsed_per_px * px + collapse_cost


def measure_wallclock():
    """Wall-clock of one training forward in each mode (small config)."""
    size, batch = (16, 2) if FAST else (32, 4)
    times = {}
    for mode in ("expanded", "collapsed"):
        model = SESR(scale=2, f=16, m=5, expansion=256, seed=0, mode=mode)
        x = Tensor(np.random.default_rng(0)
                   .standard_normal((batch, size, size, 1)).astype(np.float32))
        model(x)  # warm-up
        start = time.perf_counter()
        reps = 2 if FAST else 5
        for _ in range(reps):
            out = model(x)
        times[mode] = (time.perf_counter() - start) / reps
        del out
    return times


@pytest.mark.bench
def test_fig3_training_efficiency(benchmark):
    expanded, collapsed = analytic_fwd_macs(f=16, m=5, p=256, batch=32, size=64)
    times = benchmark.pedantic(measure_wallclock, rounds=1, iterations=1)

    emit(
        "Fig 3 / §3.3: expanded vs collapsed-space training (SESR-M5)",
        ["Quantity", "Expanded", "Collapsed", "Ratio"],
        [
            [
                "fwd MACs (batch 32, 64x64)",
                f"{expanded / 1e9:.2f}B (paper 41.77B)",
                f"{collapsed / 1e9:.2f}B (paper 1.84B)",
                f"{expanded / collapsed:.1f}x",
            ],
            [
                "measured fwd wall-clock",
                f"{times['expanded'] * 1e3:.1f}ms",
                f"{times['collapsed'] * 1e3:.1f}ms",
                f"{times['expanded'] / times['collapsed']:.1f}x",
            ],
        ],
        "fig3_training_efficiency.txt",
    )

    # Analytic numbers match the paper.
    assert expanded / 1e9 == pytest.approx(41.77, rel=0.02)
    assert collapsed / 1e9 == pytest.approx(1.84, rel=0.05)
    assert expanded / collapsed > 20

    # And the efficiency is real on our substrate, not just on paper.
    assert times["collapsed"] < times["expanded"]
