"""Serving throughput: requests/sec and latency percentiles for the engine.

Drives the :mod:`repro.serve` engine with concurrent clients posting
synthetic LR frames through SESR-M5 ×2 (collapsed at registration, as in
deployment) and reports requests/sec plus p50/p95 latency straight from the
engine's own telemetry.  Grid: thread workers (1 and multiple, exact and
micro-batched) against the process data plane (spawned workers + shared
memory tile arenas, :mod:`repro.dataplane`) at 1, 2, and multiple workers.
Each request is a distinct frame and the output cache is disabled, so the
numbers measure inference, not memoization; tiles per frame exceed the
worker count, so a single request already exercises the whole pool.

The table is the motivation for the process backend in one screen: thread
workers cannot beat one worker (the conv matmuls contend for the GIL),
process workers can — on a multi-core host.  Orderings are asserted only
when the host has the cores to show them; outputs are asserted bit-identical
across backends unconditionally.
"""

import os
import threading

import numpy as np
import pytest

from common import FAST, emit
from repro.serve import EngineConfig, InferenceEngine, ModelKey, ModelRegistry

FRAME = (48, 48) if FAST else (96, 96)
TILE = 24 if FAST else 32
CLIENTS = 4
REQUESTS_PER_CLIENT = 2 if FAST else 6
# Always benchmark a 4-worker pool: on multi-core hosts process workers
# should beat the single worker (each child owns a whole core); on smaller
# hosts the table shows what oversubscription costs.  Core count is in the
# emitted title so results are interpretable.
MULTI_WORKERS = 4


def run_load(engine: InferenceEngine) -> dict:
    """Hammer the engine from CLIENTS threads; return throughput stats."""
    rng = np.random.default_rng(0)
    frames = [
        rng.random(FRAME).astype(np.float32)
        for _ in range(CLIENTS * REQUESTS_PER_CLIENT)
    ]
    errors = []

    def client(idx: int) -> None:
        for r in range(REQUESTS_PER_CLIENT):
            try:
                engine.upscale(frames[idx * REQUESTS_PER_CLIENT + r])
            except Exception as exc:  # noqa: BLE001 — benchmark bookkeeping
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    from time import perf_counter

    start = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = perf_counter() - start
    assert not errors, errors
    latency = engine.telemetry.histogram("engine.request_latency_ms")
    n = len(frames)
    return {
        "requests": n,
        "rps": n / elapsed,
        "p50": latency.percentile(50),
        "p95": latency.percentile(95),
    }


@pytest.mark.bench
def test_serve_throughput():
    registry = ModelRegistry()
    key = ModelKey(name="M5", scale=2)
    # (label, backend, workers, microbatch)
    grid = [
        ("exact", "thread", 1, False),
        ("exact", "thread", MULTI_WORKERS, False),
        ("microbatch", "thread", 1, True),
        ("microbatch", "thread", MULTI_WORKERS, True),
        ("exact", "process", 1, False),
        ("exact", "process", 2, False),
        ("exact", "process", MULTI_WORKERS, False),
    ]
    results = {}
    reference = None
    check_frame = np.random.default_rng(1).random(FRAME).astype(np.float32)
    for mode, backend, workers, microbatch in grid:
        config = EngineConfig(
            workers=workers, tile=TILE, microbatch=microbatch,
            cache_size=0, max_pending=64, worker_backend=backend,
        )
        with InferenceEngine(registry, key, config=config) as engine:
            results[(mode, backend, workers)] = run_load(engine)
            if not microbatch:
                # The data plane must never trade pixels for speed: every
                # exact configuration, thread or process, produces the
                # same bytes.
                out = engine.upscale(check_frame)
                if reference is None:
                    reference = out
                else:
                    assert np.array_equal(reference, out), (
                        f"{backend} x{workers} diverged from the exact "
                        "single-thread output"
                    )

    base = results[("exact", "thread", 1)]["rps"]
    rows = [
        [mode, backend, workers, r["requests"], f"{r['rps']:.2f}",
         f"{r['p50']:.1f}", f"{r['p95']:.1f}", f"{r['rps'] / base:.2f}x"]
        for (mode, backend, workers), r in results.items()
    ]
    emit(
        f"Serving throughput — SESR-M5 x2, {FRAME[1]}x{FRAME[0]} LR frames, "
        f"tile {TILE}, {CLIENTS} concurrent clients "
        f"(host: {os.cpu_count()} cores)",
        ["mode", "backend", "workers", "requests", "req/s", "p50 ms",
         "p95 ms", "speedup"],
        rows,
        "serve_throughput.txt",
    )
    # Sanity floor only: relative orderings are host-dependent, but the
    # engine must sustain traffic in every configuration.
    assert all(r["rps"] > 0 for r in results.values())
    # Collapse happened once for the whole grid, not once per engine.
    assert registry.collapse_count(key) == 1
    # The GIL-escape claim is only measurable with real cores to spread
    # over; on a 1-core host the process pool pays IPC for no parallelism
    # and the ordering is noise.
    if (os.cpu_count() or 1) >= 2 and not FAST:
        assert (results[("exact", "process", 2)]["rps"]
                > results[("exact", "thread", 1)]["rps"]), (
            "2 process workers should out-serve 1 thread worker on a "
            "multi-core host"
        )
