"""Serving throughput: requests/sec and latency percentiles for the engine.

Drives the :mod:`repro.serve` engine with concurrent clients posting
synthetic LR frames through SESR-M5 ×2 (collapsed at registration, as in
deployment) and reports requests/sec plus p50/p95 latency straight from the
engine's own telemetry.  Grid: 1 vs. multiple workers, exact vs.
micro-batched tiles.  Each request is a distinct frame and the output cache
is disabled, so the numbers measure inference, not memoization; tiles per
frame exceed the worker count, so a single request already exercises the
whole pool.
"""

import os
import threading

import numpy as np
import pytest

from common import FAST, emit
from repro.serve import InferenceEngine, ModelKey, ModelRegistry

FRAME = (48, 48) if FAST else (96, 96)
TILE = 24 if FAST else 32
CLIENTS = 4
REQUESTS_PER_CLIENT = 2 if FAST else 6
# Always benchmark a 4-worker pool: on multi-core hosts it should beat the
# single worker (NumPy releases the GIL in the conv matmuls); on smaller
# hosts the table shows what oversubscription costs.  Core count is in the
# emitted title so results are interpretable.
MULTI_WORKERS = 4


def run_load(engine: InferenceEngine) -> dict:
    """Hammer the engine from CLIENTS threads; return throughput stats."""
    rng = np.random.default_rng(0)
    frames = [
        rng.random(FRAME).astype(np.float32)
        for _ in range(CLIENTS * REQUESTS_PER_CLIENT)
    ]
    errors = []

    def client(idx: int) -> None:
        for r in range(REQUESTS_PER_CLIENT):
            try:
                engine.upscale(frames[idx * REQUESTS_PER_CLIENT + r])
            except Exception as exc:  # noqa: BLE001 — benchmark bookkeeping
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    from time import perf_counter

    start = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = perf_counter() - start
    assert not errors, errors
    latency = engine.telemetry.histogram("engine.request_latency_ms")
    n = len(frames)
    return {
        "requests": n,
        "rps": n / elapsed,
        "p50": latency.percentile(50),
        "p95": latency.percentile(95),
    }


@pytest.mark.bench
def test_serve_throughput():
    registry = ModelRegistry()
    key = ModelKey(name="M5", scale=2)
    grid = [
        ("exact", 1, False),
        ("exact", MULTI_WORKERS, False),
        ("microbatch", 1, True),
        ("microbatch", MULTI_WORKERS, True),
    ]
    results = {}
    for mode, workers, microbatch in grid:
        with InferenceEngine(
            registry, key, workers=workers, tile=TILE,
            microbatch=microbatch, cache_size=0, max_pending=64,
        ) as engine:
            results[(mode, workers)] = run_load(engine)

    base = results[("exact", 1)]["rps"]
    rows = [
        [mode, workers, r["requests"], f"{r['rps']:.2f}",
         f"{r['p50']:.1f}", f"{r['p95']:.1f}", f"{r['rps'] / base:.2f}x"]
        for (mode, workers), r in results.items()
    ]
    emit(
        f"Serving throughput — SESR-M5 x2, {FRAME[1]}x{FRAME[0]} LR frames, "
        f"tile {TILE}, {CLIENTS} concurrent clients "
        f"(host: {os.cpu_count()} cores)",
        ["mode", "workers", "requests", "req/s", "p50 ms", "p95 ms",
         "speedup"],
        rows,
        "serve_throughput.txt",
    )
    # Sanity floor only: relative orderings are host-dependent, but the
    # engine must sustain traffic in every configuration.
    assert all(r["rps"] > 0 for r in results.values())
    # Collapse happened once for the whole grid, not once per engine.
    assert registry.collapse_count(key) == 1
