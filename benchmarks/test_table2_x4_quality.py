"""Table 2 — PSNR/SSIM for ×4 SISR across six benchmark suites.

Follows the paper's ×4 protocol (§5.1): start from the pretrained ×2 SESR,
replace the 5×5×f×4 head with 5×5×f×16, apply depth-to-space twice, and
fine-tune.  FSRCNN ×4 is trained from scratch (its deconv stride changes).
Complexity columns are recomputed and checked exactly; quality assertions
pin the paper's orderings.
"""

import pytest

import repro.zoo as zoo
from common import (
    FAST,
    SUITE_NAMES,
    SUITE_TO_ZOO,
    emit,
    finetune_config,
    mean_psnr,
    quality_row,
)
from repro.core import SESR, FSRCNN
from repro.train import run_experiment

SESR_NAMES = ["SESR-M3", "SESR-M5", "SESR-M11"]


def run_table2(cache):
    results = {"Bicubic": cache.bicubic(4)}

    # FSRCNN ×4: fresh training (architecture changes with scale).
    _, metrics = cache.get(
        "FSRCNN (our setup)", 4, lambda: FSRCNN(scale=4, seed=0)
    )
    results["FSRCNN (our setup)"] = metrics

    # SESR ×4: transfer the ×2 trunk (trains the ×2 model first if Table 1
    # has not populated the cache in this session).
    for name in SESR_NAMES:
        if not cache.has(name, 4):
            x2_model, _ = cache.get(
                name, 2,
                lambda name=name: SESR.from_name(name.replace("SESR-", ""),
                                                 scale=2, seed=0),
            )
            x4_model = x2_model.convert_scale(4)
            res = run_experiment(x4_model, finetune_config(4), cache.suites(4))
            cache.put(name, 4, x4_model, res.metrics)
        results[name] = cache.get(name, 4, None)[1]
    return results


@pytest.mark.bench
def test_table2_x4_quality(benchmark, cache):
    results = benchmark.pedantic(run_table2, args=(cache,),
                                 rounds=1, iterations=1)

    comp_rows = []
    for entry in zoo.entries_for_scale(4):
        comp_rows.append([
            entry.name, entry.regime,
            "-" if entry.reported_params_k.get(4) is None
            else f"{entry.reported_params_k[4]:.2f}K",
            "-" if entry.computed_params(4) is None
            else f"{entry.computed_params(4) / 1e3:.2f}K",
            "-" if entry.reported_macs_g.get(4) is None
            else f"{entry.reported_macs_g[4]:.2f}G",
            "-" if entry.computed_macs_720p(4) is None
            else f"{entry.computed_macs_720p(4) / 1e9:.2f}G",
        ])
    emit(
        "Table 2 (complexity columns, x4): paper vs recomputed",
        ["Model", "Regime", "Params (paper)", "Params (ours)",
         "MACs (paper)", "MACs (ours)"],
        comp_rows,
        "table2_complexity.txt",
    )

    qual_rows = []
    for name, metrics in results.items():
        qual_rows.append([f"{name} (measured)"] + quality_row(metrics))
        if name in zoo.ZOO and 4 in zoo.get(name).reported_quality:
            reported = zoo.get(name).reported_quality[4]
            qual_rows.append([f"{name} (paper)"] + [
                "-" if reported.get(SUITE_TO_ZOO[s], (None,))[0] is None
                else f"{reported[SUITE_TO_ZOO[s]][0]:.2f}/"
                     f"{reported[SUITE_TO_ZOO[s]][1]:.4f}"
                for s in SUITE_NAMES
            ])
    emit(
        "Table 2 (quality, x4): PSNR/SSIM on synthetic suites "
        "(x2-pretrained trunks, fine-tuned)",
        ["Model"] + list(SUITE_NAMES),
        qual_rows,
        "table2_quality.txt",
    )

    # Complexity columns exact.
    for entry in zoo.modelled_entries():
        if 4 not in entry.reported_quality:
            continue
        if entry.reported_params_k.get(4) is not None:
            assert entry.computed_params(4) == pytest.approx(
                entry.reported_params_k[4] * 1e3, rel=0.005
            ), entry.name
        if entry.reported_macs_g.get(4) is not None:
            assert entry.computed_macs_720p(4) == pytest.approx(
                entry.reported_macs_g[4] * 1e9, rel=0.01
            ), entry.name

    # The ×4 MAC story: SESR-M5 needs ~4.4× fewer MACs than FSRCNN.
    m5_macs = zoo.get("SESR-M5").computed_macs_720p(4)
    fsr_macs = zoo.get("FSRCNN").computed_macs_720p(4)
    assert fsr_macs / m5_macs == pytest.approx(4.4, rel=0.05)

    if FAST:
        assert all(mean_psnr(m) > 2 for m in results.values())  # not NaN/diverged
        return

    bicubic = mean_psnr(results["Bicubic"])
    fsrcnn = mean_psnr(results["FSRCNN (our setup)"])
    m5 = mean_psnr(results["SESR-M5"])
    m11 = mean_psnr(results["SESR-M11"])

    # Orderings: SESR > bicubic; SESR-M5 ≥ FSRCNN at 4.4× fewer MACs.
    # (M11 gets a small noise band: ×4 at this budget leaves the deeper
    # model barely past bicubic — see the scale-down policy.)
    assert m5 > bicubic
    assert m11 > bicubic - 0.1
    assert m5 > fsrcnn - 0.05
