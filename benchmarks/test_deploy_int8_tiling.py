"""Deployment bench: int8 quantization cost + functional tiling overhead.

Extends §5.6 from the performance model to executable deployment:

* the Ethos-class NPU the paper targets runs int8 — this bench measures the
  PSNR cost of post-training int8 quantization of a trained, collapsed
  SESR (weights per-channel symmetric, activations per-tensor affine) and
  the 4× weight-size reduction;
* the paper's tiled inference needs halo overlap for functional
  correctness — this bench verifies exactness with the receptive-field
  halo, quantifies the boundary overhead the paper's estimate ignores,
  and feeds it back into the performance model as a corrected runtime.
"""

import numpy as np
import pytest

from common import FAST, emit
from repro.core import SESR
from repro.deploy import (
    halo_overhead,
    quantize_sesr,
    receptive_radius,
    tiled_upscale,
)
from repro.hw import ETHOS_N78_4TOPS, estimate_tiled, sesr_hw_graph
from repro.metrics import psnr
from repro.train import evaluate_model, predict_image


def run_deploy(cache):
    model, _ = cache.get(
        "SESR-M5", 2, lambda: SESR.from_name("M5", scale=2, seed=0)
    )
    collapsed = model.collapse()
    suites = cache.suites(2)
    eval_suite = suites["set14"]

    calib = [suites["div2k-val"][i][0] for i in range(len(suites["div2k-val"]))]
    quantized = quantize_sesr(collapsed, calib_images=calib)

    float_metrics = evaluate_model(collapsed, eval_suite)
    int8_metrics = evaluate_model(quantized, eval_suite)

    # Functional tiling: exactness + overhead accounting.
    lr_img, _ = eval_suite[0]
    full = predict_image(collapsed, lr_img)
    tiled = tiled_upscale(collapsed, lr_img, 2, tile=(24, 24))
    tile_exactness = float(np.abs(full - tiled).max())

    radius = receptive_radius(collapsed)
    overhead = halo_overhead(1080, 1920, (300, 400), radius)
    graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
    naive = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)
    corrected = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400,
                               halo_factor=1.0 + overhead)
    return {
        "float": float_metrics,
        "int8": int8_metrics,
        "bytes": (quantized.weight_bytes(), quantized.float_weight_bytes()),
        "tile_exactness": tile_exactness,
        "radius": radius,
        "overhead": overhead,
        "fps": (naive.fps, corrected.fps),
    }


@pytest.mark.bench
def test_deploy_int8_and_tiling(benchmark, cache):
    out = benchmark.pedantic(run_deploy, args=(cache,), rounds=1, iterations=1)

    int8_b, float_b = out["bytes"]
    naive_fps, corrected_fps = out["fps"]
    emit(
        "Deployment: int8 PTQ + functional tiling (trained SESR-M5, x2)",
        ["Quantity", "value"],
        [
            ["float32 PSNR (set14)", f"{out['float']['psnr']:.2f} dB"],
            ["int8 PSNR (set14)", f"{out['int8']['psnr']:.2f} dB"],
            ["int8 quality cost",
             f"{out['float']['psnr'] - out['int8']['psnr']:.3f} dB"],
            ["weight bytes fp32 -> int8", f"{float_b} -> {int8_b}"],
            ["tiled vs full-frame max |Δ| (halo = receptive radius)",
             f"{out['tile_exactness']:.2e}"],
            ["receptive radius (SESR-M5)", f"{out['radius']} px"],
            ["halo overhead @400x300 tiles (paper ignores this)",
             f"{out['overhead'] * 100:.1f}%"],
            ["tiled FPS naive / halo-corrected",
             f"{naive_fps:.1f} / {corrected_fps:.1f}"],
        ],
        "deploy_int8_tiling.txt",
    )

    # Tiling with the receptive-field halo is exact.
    assert out["tile_exactness"] < 1e-5
    # SESR-M5's receptive radius is m + 4 = 9 LR pixels.
    assert out["radius"] == 9
    # The boundary overhead is real but small — the paper's claim that it
    # is "not significant" for shallow SESR holds (< 15% extra pixels).
    assert 0.0 < out["overhead"] < 0.15
    assert corrected_fps < naive_fps
    assert corrected_fps > naive_fps / 1.2
    # int8 weights are exactly 4× smaller.
    assert float_b == 4 * int8_b

    if FAST:
        return
    # int8 costs well under 1 dB on a trained model.
    assert out["float"]["psnr"] - out["int8"]["psnr"] < 1.0