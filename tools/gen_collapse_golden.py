#!/usr/bin/env python
"""Regenerate the golden fixture for the collapse algorithms.

Writes ``tests/core/golden/collapse_golden.npz``: deterministic random
inputs plus the exact outputs of :func:`collapse_linear_block`
(Algorithm 1), :func:`collapse_bias`, and :func:`collapse_residual`
(Algorithm 2) computed by the *current* implementation.

``tests/core/test_collapse_golden.py`` pins these byte-for-byte, so any
change to the collapse path — intentional or not — shows up as a diff in
this file.  Regenerate (and review the numeric drift!) with::

    PYTHONPATH=src python tools/gen_collapse_golden.py
"""

from __future__ import annotations

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.collapse import (  # noqa: E402
    collapse_bias,
    collapse_linear_block,
    collapse_residual,
)

OUT = os.path.join(
    os.path.dirname(__file__), "..", "tests", "core", "golden",
    "collapse_golden.npz",
)


def main() -> None:
    rng = np.random.default_rng(20260806)

    # Case A: the paper's 5x5 head block — 5x5 expand then 1x1 project.
    a_w1 = rng.standard_normal((5, 5, 1, 16))
    a_w2 = rng.standard_normal((1, 1, 16, 8))
    a_wc = collapse_linear_block([a_w1, a_w2], (5, 5), 1, 8)

    # Case B: a 3x3 trunk block as a THREE-layer stack (3x3 -> 1x1 -> 1x1),
    # exercising the recursive fold beyond the common pair.
    b_w1 = rng.standard_normal((3, 3, 8, 32))
    b_w2 = rng.standard_normal((1, 1, 32, 32))
    b_w3 = rng.standard_normal((1, 1, 32, 8))
    b_wc = collapse_linear_block([b_w1, b_w2, b_w3], (3, 3), 8, 8)

    # Bias fold through case B's stack (middle layer biasless, like a
    # conv that never had one).
    b_b1 = rng.standard_normal(32)
    b_b3 = rng.standard_normal(8)
    b_bc = collapse_bias([b_w1, b_w2, b_w3], [b_b1, None, b_b3])

    # Algorithm 2 on case B's collapsed weight.
    b_wr = collapse_residual(b_wc)

    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    np.savez(
        OUT,
        a_w1=a_w1, a_w2=a_w2, a_wc=a_wc,
        b_w1=b_w1, b_w2=b_w2, b_w3=b_w3, b_wc=b_wc,
        b_b1=b_b1, b_b3=b_b3, b_bc=b_bc,
        b_wr=b_wr,
    )
    print(f"wrote {os.path.normpath(OUT)}")


if __name__ == "__main__":
    main()
